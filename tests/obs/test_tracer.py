"""Unit tests for the zero-dependency span tracer."""

import json

from repro.obs import Span, Tracer


class TestSpanNesting:
    def test_spans_nest_under_the_active_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("leaf", hit=1)
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [s.name for s in outer.children] == ["inner"]
        assert [s.name for s in outer.children[0].children] == ["leaf"]

    def test_siblings_stay_ordered(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.roots[0].children] == ["a", "b"]

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert tracer.current is None
        assert tracer.roots[0].ended_sec > 0.0

    def test_name_may_also_be_an_attribute(self):
        # ``span(name, /, **attrs)``: the positional-only parameter leaves
        # "name" free as an attribute key (bench spans rely on this).
        tracer = Tracer()
        with tracer.span("bench_query", name="C1") as span:
            pass
        assert span.attrs["name"] == "C1"


class TestSpanData:
    def test_duration_is_monotonic(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            pass
        assert span.duration_sec >= 0.0

    def test_set_and_attrs(self):
        tracer = Tracer()
        with tracer.span("s", engine="PRoST") as span:
            span.set("rows", 7)
        assert span.attrs == {"engine": "PRoST", "rows": 7}

    def test_record_counters_keeps_only_nonzero_deltas(self):
        span = Span(name="s")
        span.record_counters(
            {"engine.bytes_scanned": 10, "engine.stages": 2, "faults.retries": 0},
            {"engine.bytes_scanned": 25, "engine.stages": 2, "faults.retries": 0},
        )
        assert span.counters == {"engine.bytes_scanned": 15}

    def test_walk_is_preorder_and_find_matches_by_name(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("left"):
                tracer.event("deep")
            tracer.event("right")
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["root", "left", "deep", "right"]
        assert root.find("deep") is root.children[0].children[0]
        assert root.find("missing") is None


class TestSerialization:
    def test_to_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("query", engine="PRoST") as span:
            span.set("rows", 3)
            tracer.event("scan", table="vp_likes")
        payload = json.loads(tracer.to_json())
        (root,) = payload["spans"]
        assert root["name"] == "query"
        assert root["attrs"] == {"engine": "PRoST", "rows": 3}
        assert root["children"][0]["attrs"] == {"table": "vp_likes"}
        assert root["duration_ms"] >= 0

    def test_non_jsonable_attrs_are_coerced(self):
        tracer = Tracer()
        with tracer.span("s", where={1, 2}) as span:
            pass
        json.dumps(span.to_dict())  # must not raise

    def test_write_json_ends_with_newline(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_json(path)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["spans"][0]["name"] == "s"
