"""Shared fixtures for the observability tests: one small WatDiv graph.

Session-scoped because loading is the slow part; every test treats the
loaded engines as read-only.
"""

import pytest

from repro.core.prost import ProstEngine
from repro.watdiv.generator import generate_watdiv


@pytest.fixture(scope="session")
def watdiv_dataset():
    return generate_watdiv(scale=120, seed=3)


@pytest.fixture(scope="session")
def prost_watdiv(watdiv_dataset):
    engine = ProstEngine(num_workers=9, strategy="mixed")
    engine.load(watdiv_dataset.graph)
    return engine


@pytest.fixture(scope="session")
def prost_watdiv_vp(watdiv_dataset):
    engine = ProstEngine(num_workers=9, strategy="vp")
    engine.load(watdiv_dataset.graph)
    return engine
