"""Property tests: span counters must reconcile with ExecutionMetrics.

Each physical-operator span records the *delta* of every counter while it
was open, so the root operator span's deltas must equal the query's final
``ExecutionMetrics`` totals, leaf scan spans must sum to the scan totals,
and the traced ``rows_out`` attributes must match both the metrics and the
actual result. Run over the full WatDiv basic query mix so the invariant
holds across star, linear, snowflake, and complex shapes — not just the
hand-picked golden queries.
"""

import pytest

from repro.obs import Tracer, snapshot_execution_metrics
from repro.watdiv.queries import basic_query_set

#: Counters that accumulate strictly through operator execution, so the
#: root span's deltas must account for all of them.
ADDITIVE = (
    "engine.bytes_scanned",
    "engine.rows_scanned",
    "engine.shuffle_bytes",
    "engine.shuffle_rows",
    "engine.broadcast_bytes",
    "engine.broadcast_count",
    "engine.colocated_joins",
)


def _queries(dataset):
    return [q for q in basic_query_set(dataset) if q.group in ("C", "F", "S")]


def _engine_trace(report):
    engine_report = report.engine_report
    assert engine_report is not None and engine_report.trace is not None
    return engine_report


class TestTraceMatchesMetrics:
    def test_root_span_deltas_equal_metrics_totals(self, prost_watdiv, watdiv_dataset):
        for query in _queries(watdiv_dataset):
            tracer = Tracer()
            prost_watdiv.sparql(query.text, tracer=tracer)
            engine_report = _engine_trace(prost_watdiv.last_query_report())
            totals = snapshot_execution_metrics(engine_report.metrics)
            root = engine_report.trace
            for name in ADDITIVE:
                assert root.counters.get(name, 0) == totals[name], (
                    f"{query.name}: {name} root-span delta "
                    f"{root.counters.get(name, 0)} != metrics {totals[name]}"
                )

    def test_scan_spans_sum_to_scan_totals(self, prost_watdiv, watdiv_dataset):
        for query in _queries(watdiv_dataset):
            tracer = Tracer()
            prost_watdiv.sparql(query.text, tracer=tracer)
            engine_report = _engine_trace(prost_watdiv.last_query_report())
            metrics = engine_report.metrics
            scans = [
                s for s in engine_report.trace.walk()
                if s.attrs.get("op") == "scan"
            ]
            assert scans, f"{query.name}: no scan spans recorded"
            assert sum(
                s.counters.get("engine.bytes_scanned", 0) for s in scans
            ) == metrics.bytes_scanned
            assert sum(
                s.counters.get("engine.rows_scanned", 0) for s in scans
            ) == metrics.rows_scanned

    def test_root_rows_out_matches_metrics_rows_output(
        self, prost_watdiv, watdiv_dataset
    ):
        for query in _queries(watdiv_dataset):
            tracer = Tracer()
            result = prost_watdiv.sparql(query.text, tracer=tracer)
            engine_report = _engine_trace(prost_watdiv.last_query_report())
            root = engine_report.trace
            assert root.attrs["rows_out"] == engine_report.metrics.rows_output
            query_span = tracer.roots[0]
            assert query_span.name == "query"
            assert query_span.attrs["rows"] == len(result.rows)

    def test_every_operator_span_is_tagged(self, prost_watdiv, watdiv_dataset):
        query = _queries(watdiv_dataset)[0]
        tracer = Tracer()
        prost_watdiv.sparql(query.text, tracer=tracer)
        engine_report = _engine_trace(prost_watdiv.last_query_report())
        for span in engine_report.trace.walk():
            assert "op" in span.attrs, f"untagged span {span.name}"
            assert "rows_out" in span.attrs
            if span.attrs["op"] in ("join", "cross"):
                assert "strategy" in span.attrs

    def test_untraced_run_records_nothing(self, prost_watdiv, watdiv_dataset):
        query = _queries(watdiv_dataset)[0]
        prost_watdiv.sparql(query.text)
        report = prost_watdiv.last_query_report()
        assert report.trace is None
        assert report.engine_report.trace is None


class TestLoadTracing:
    def test_load_produces_layered_spans(self, watdiv_dataset):
        from repro.core.prost import ProstEngine

        tracer = Tracer()
        engine = ProstEngine(num_workers=3, strategy="mixed")
        engine.load(watdiv_dataset.graph, tracer=tracer)
        (load,) = tracer.roots
        assert load.name == "load"
        assert load.attrs["triples"] == len(watdiv_dataset.graph)
        child_names = [s.name for s in load.children]
        assert "collect_statistics" in child_names
        assert "load_vertical_partitioning" in child_names
        assert "load_property_table" in child_names


@pytest.mark.parametrize("shape", ["optional", "union"])
def test_explain_analyze_handles_non_bgp_shapes(prost_watdiv, shape):
    # OPTIONAL / UNION queries cannot align spans to one join tree; EXPLAIN
    # ANALYZE must still render (estimate-only tree + traced engine plan).
    if shape == "optional":
        query = """SELECT ?v ?name ?r WHERE {
  ?v sorg:caption ?name .
  OPTIONAL { ?v rev:hasReview ?r }
}"""
        marker = "OPTIONAL:"
    else:
        query = """SELECT ?v WHERE {
  { ?v wsdbm:likes ?a } UNION { ?v wsdbm:follows ?b }
}"""
        marker = "UNION:"
    rendered = prost_watdiv.explain(query, analyze=True)
    assert marker in rendered
    assert "== Engine Plan ==" in rendered
    assert "rows=" in rendered.split("== Engine Plan ==")[1]
