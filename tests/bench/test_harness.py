"""Benchmark harness tests (small scale): runs, aggregation, rendering."""

import pytest

from repro.bench import (
    BenchmarkConfig,
    BenchmarkSuite,
    render_figure2,
    render_figure3,
    render_table1,
    render_table2,
    speedup_table,
)


@pytest.fixture(scope="module")
def suite():
    return BenchmarkSuite(BenchmarkConfig(scale=40, seed=11))


class TestSuiteSetup:
    def test_twenty_queries_prepared(self, suite):
        assert len(suite.queries) == 20

    def test_data_scale_emulates_paper_dataset(self, suite):
        assert suite.data_scale == pytest.approx(
            suite.config.emulated_triples / len(suite.dataset.graph)
        )

    def test_factories_share_cluster_shape(self, suite):
        prost = suite.make_prost()
        assert prost.session.config.num_workers == suite.config.num_workers
        assert prost.session.config.data_scale == pytest.approx(suite.data_scale)


class TestRuns:
    @pytest.fixture(scope="class")
    def prost_run(self, suite):
        return suite.run_system(suite.make_prost())

    def test_run_covers_all_queries(self, prost_run):
        assert len(prost_run.queries) == 20
        for result in prost_run.queries.values():
            assert result.simulated_sec > 0

    def test_average_by_group(self, prost_run):
        averages = prost_run.average_by_group()
        assert set(averages) == {"C", "F", "L", "S"}
        assert all(value > 0 for value in averages.values())

    def test_strategy_comparison_runs_both(self, suite):
        runs = suite.run_strategy_comparison()
        assert set(runs) == {"VP only", "Mixed (VP + PT)"}

    def test_loading_comparison_covers_four_systems(self, suite):
        reports = suite.run_loading_comparison()
        assert [r.system for r in reports] == ["PRoST", "SPARQLGX", "S2RDF", "Rya"]


class TestRendering:
    @pytest.fixture(scope="class")
    def runs(self, suite):
        # Two cheap systems suffice to exercise the renderers.
        return {
            "PRoST": suite.run_system(suite.make_prost()),
            "SPARQLGX": suite.run_system(suite.make_sparqlgx()),
        }

    def test_table1_rendering(self, suite):
        text = render_table1(suite.run_loading_comparison(), suite.data_scale)
        assert "Table 1" in text and "PRoST" in text and "GB" in text

    def test_figure_rendering(self, runs):
        text = render_figure3(runs)
        assert "Figure 3" in text and "C1" in text and "S7" in text
        text2 = render_figure2(runs)
        assert "Figure 2" in text2

    def test_table2_rendering(self, runs):
        text = render_table2(runs)
        assert "Complex" in text and "Star" in text

    def test_speedup_table(self, runs):
        ratios = speedup_table(runs, "PRoST", "SPARQLGX")
        assert len(ratios) == 20
        assert all(ratio > 0 for ratio in ratios.values())


class TestBarChart:
    def test_bar_chart_renders_all_queries(self, suite):
        from repro.bench import render_bar_chart

        runs = {
            "PRoST": suite.run_system(suite.make_prost()),
            "SPARQLGX": suite.run_system(suite.make_sparqlgx()),
        }
        chart = render_bar_chart(runs, "Figure 3 (bars)")
        assert "C1" in chart and "S7" in chart
        assert "█" in chart
        assert "log-scaled" in chart

    def test_bar_chart_linear_mode(self, suite):
        from repro.bench import render_bar_chart

        runs = {"PRoST": suite.run_system(suite.make_prost())}
        chart = render_bar_chart(runs, "linear", logarithmic=False)
        assert "log-scaled" not in chart

    def test_bar_chart_handles_empty_runs(self):
        from repro.bench import render_bar_chart
        from repro.bench.harness import SystemRun
        from repro.core.loader import LoadReport

        empty = SystemRun(
            system="X",
            load_report=LoadReport("X", 0, 0, 0, 0.0, 0.0),
        )
        assert "(no data)" in render_bar_chart({"X": empty}, "empty")
