"""Batch execution: deduplication, shared scans, and result equivalence."""

from repro.serve import QueryServer, execute_batch, tables_scanned

from .conftest import Q_FOLLOWS, Q_FOLLOWS_ISO, Q_STAR, Q_TWO_HOP, row_keys


class TestTablesScanned:
    def test_single_pattern_scans_one_table(self, engine):
        frame, _ = engine.dataframe(Q_FOLLOWS)
        assert len(tables_scanned(frame.plan)) == 1

    def test_self_join_keeps_duplicate_references(self, engine):
        frame, _ = engine.dataframe(Q_TWO_HOP)
        tables = tables_scanned(frame.plan)
        assert len(tables) == 2
        assert len(set(tables)) == 1  # same table, referenced twice


class TestExecuteBatch:
    def test_results_match_one_at_a_time_execution(self, engine):
        queries = [Q_FOLLOWS, Q_STAR, Q_TWO_HOP, Q_FOLLOWS_ISO]
        server = QueryServer(engine, plan_cache_size=8, result_cache_size=0)
        batched = execute_batch(server, queries)
        for query, result in zip(queries, batched):
            assert row_keys(result) == row_keys(engine.sparql(query)), query

    def test_results_return_in_input_order_with_caller_names(self, engine):
        server = QueryServer(engine, plan_cache_size=8, result_cache_size=0)
        results = execute_batch(server, [Q_FOLLOWS_ISO, Q_FOLLOWS])
        assert results[0].variables == ("x", "y")
        assert results[1].variables == ("s", "o")

    def test_duplicates_execute_once(self, engine):
        server = QueryServer(engine, plan_cache_size=8, result_cache_size=0)
        execute_batch(server, [Q_FOLLOWS, Q_FOLLOWS, Q_FOLLOWS_ISO])
        stats = server.stats
        assert stats.queries_served == 3
        # Q_FOLLOWS, its copy, and the isomorphic variant are one group.
        assert stats.batched_queries == 2
        assert stats.plan_cache_misses == 1

    def test_shared_scans_counted_across_distinct_queries(self, engine):
        server = QueryServer(engine, plan_cache_size=8, result_cache_size=0)
        # Q_FOLLOWS scans follows once, Q_TWO_HOP twice: 3 references,
        # 1 distinct table -> 2 shared.
        execute_batch(server, [Q_FOLLOWS, Q_TWO_HOP])
        assert server.stats.shared_scans == 2

    def test_batch_populates_the_result_cache(self, engine):
        server = QueryServer(engine, plan_cache_size=8, result_cache_size=8)
        execute_batch(server, [Q_FOLLOWS])
        server.sparql(Q_FOLLOWS)
        assert server.stats.result_cache_hits == 1

    def test_batch_charges_the_tenant(self, engine):
        server = QueryServer(engine, plan_cache_size=8, result_cache_size=0)
        execute_batch(server, [Q_FOLLOWS, Q_STAR], tenant="batcher")
        assert server.tenant_snapshot()["batcher"]["admitted"] == 2
