"""Deterministic interleaving replays over the serving data plane.

The dynamic counterpart of ``repro.analysis.concurrency``: a seeded
cooperative scheduler (:mod:`repro.testing.interleave`) drives real
threads through ``ProstEngine`` / ``QueryServer`` one at a time, choosing
who runs at every instrumented lock acquire/release and method boundary.
Each seed is one exact thread schedule, so every test here is a replayable
proof, not a stress test:

- the *pre-fix* stale-plan race (a plan built against the old store
  published after a reload cleared the cache) is reinstated by monkeypatch
  and **caught** by at least one seed — demonstrating the harness can see
  the bug the epoch-checked ``_cache_plan`` insert fixed;
- the fixed tree keeps results multiset-equal to a legitimate dataset
  (pre- or post-reload) under every swept seed, across cache eviction
  churn, epoch-bump reloads, and batch execution.

Sweep width comes from ``REPRO_INTERLEAVE_SEEDS`` (default 5; CI runs 10).
A failing seed prints one-line replay instructions.
"""

from repro.core import ProstEngine
from repro.rdf import Graph
from repro.serve import QueryServer
from repro.serve.batching import execute_batch
from repro.testing.interleave import (
    InstrumentedLock,
    InterleaveScheduler,
    instrument_methods,
    interleave_seeds,
    sweep,
)

from .conftest import GRAPH_NT, Q_FOLLOWS, Q_STAR, Q_TWO_HOP, RELOAD_NT, row_keys

TEST_ID = "tests/serve/test_interleave.py"

QUERIES = (Q_FOLLOWS, Q_TWO_HOP, Q_STAR)


def _expected_rows(nt: str) -> dict[str, list]:
    """Ground-truth row multisets per query, from an uncontended engine."""
    engine = ProstEngine()
    engine.load(Graph.from_ntriples(nt))
    return {query: row_keys(engine.sparql(query)) for query in QUERIES}


EXPECTED_OLD = _expected_rows(GRAPH_NT)
EXPECTED_NEW = _expected_rows(RELOAD_NT)


def _loaded_engine() -> ProstEngine:
    engine = ProstEngine()
    engine.load(Graph.from_ntriples(GRAPH_NT))
    return engine


def _break_plan_publication(engine: ProstEngine) -> None:
    """Reinstate the pre-fix bug: publish plans *without* the epoch check.

    This is exactly what the engine did before ``_cache_plan`` existed —
    an unconditional text-keyed insert, allowing a plan built against the
    old store to land after a reload cleared the cache.
    """

    def unconditional(text, planned_version, frame, description):
        with engine._cache_lock:
            engine._plan_cache[text] = (frame, description)

    engine._cache_plan = unconditional


def _run_reload_race(seed: int, broken: bool):
    """One reader serving Q_FOLLOWS racing one dataset reload.

    Returns the rows Q_FOLLOWS serves *after* both threads joined — with
    correct epoch checking these must be the new dataset's rows.
    """
    engine = _loaded_engine()
    scheduler = InterleaveScheduler(seed)
    engine._cache_lock = InstrumentedLock(scheduler, "engine._cache_lock")
    if broken:
        _break_plan_publication(engine)
        instrument_methods(scheduler, engine, ["dataframe", "load"])
    else:
        instrument_methods(scheduler, engine, ["dataframe", "load", "_cache_plan"])
    new_graph = Graph.from_ntriples(RELOAD_NT)

    result = scheduler.run(
        {
            "reader": lambda: engine.sparql(Q_FOLLOWS),
            "reloader": lambda: engine.load(new_graph),
        },
        timeout_sec=60,
    )
    result.raise_errors()
    return row_keys(engine.sparql(Q_FOLLOWS))


class TestEngineReloadRace:
    def test_unchecked_plan_publication_is_caught(self):
        """The pre-fix bug must be *observable* under this harness: some
        seed's schedule lands the stale plan after the reload's cache
        clear, and the engine then serves old-store rows forever."""
        stale_seeds = [
            seed
            for seed in range(10)
            if _run_reload_race(seed, broken=True) != EXPECTED_NEW[Q_FOLLOWS]
        ]
        assert stale_seeds, (
            "no seed in 0..9 reproduced the stale-plan race against the "
            "unchecked insert; the interleaving harness lost the coverage "
            "that justifies ProstEngine._cache_plan's epoch check"
        )

    def test_epoch_checked_publication_survives_every_seed(self):
        """The shipped engine: after a racing reload, the very next serving
        sees the new dataset under every swept schedule."""

        def scenario(seed: int) -> None:
            rows = _run_reload_race(seed, broken=False)
            assert rows == EXPECTED_NEW[Q_FOLLOWS], (
                f"stale rows served after reload: {rows}"
            )

        sweep(scenario, test_id=TEST_ID)


class TestServerInterleavings:
    @staticmethod
    def _instrumented_server(scheduler, plan_cache_size=2, result_cache_size=2):
        engine = _loaded_engine()
        server = QueryServer(
            engine,
            plan_cache_size=plan_cache_size,
            result_cache_size=result_cache_size,
        )
        engine._cache_lock = InstrumentedLock(scheduler, "engine._cache_lock")
        server._lock = InstrumentedLock(scheduler, "server._lock")
        server._plan_cache._lock = InstrumentedLock(scheduler, "plan_cache._lock")
        server._result_cache._lock = InstrumentedLock(scheduler, "result_cache._lock")
        instrument_methods(scheduler, engine, ["dataframe", "load", "_cache_plan"])
        return server

    def test_eviction_churn_with_reload_keeps_results_legitimate(self):
        """Two readers cycling three plan shapes through a capacity-2 plan
        cache (guaranteed eviction churn) race one epoch-bump reload: every
        answer must be multiset-equal to the old *or* the new dataset's
        rows — never a torn mixture — and post-join servings must all be
        new."""

        def scenario(seed: int) -> None:
            scheduler = InterleaveScheduler(seed)
            server = self._instrumented_server(scheduler)
            new_graph = Graph.from_ntriples(RELOAD_NT)
            observations: dict[str, list] = {}

            def reader(name: str):
                got = []
                for query in QUERIES:
                    got.append((query, row_keys(server.sparql(query))))
                observations[name] = got

            result = scheduler.run(
                {
                    "reader-a": lambda: reader("reader-a"),
                    "reader-b": lambda: reader("reader-b"),
                    "reloader": lambda: server.load(new_graph),
                },
                timeout_sec=120,
            )
            result.raise_errors()
            for name, got in observations.items():
                for query, rows in got:
                    assert rows in (EXPECTED_OLD[query], EXPECTED_NEW[query]), (
                        f"{name} observed torn rows for {query!r}: {rows}"
                    )
            for query in QUERIES:
                assert row_keys(server.sparql(query)) == EXPECTED_NEW[query]

        sweep(scenario, test_id=TEST_ID)

    def test_batch_execution_races_reload(self):
        """``execute_batch`` (dedup + shared scans) under a racing reload:
        every per-query result is a legitimate snapshot of one dataset."""

        def scenario(seed: int) -> None:
            scheduler = InterleaveScheduler(seed)
            server = self._instrumented_server(scheduler, plan_cache_size=8)
            new_graph = Graph.from_ntriples(RELOAD_NT)
            texts = [Q_FOLLOWS, Q_TWO_HOP, Q_FOLLOWS]
            batch_out: dict[str, list] = {}

            def batch():
                batch_out["results"] = execute_batch(server, texts)

            result = scheduler.run(
                {
                    "batcher": batch,
                    "reloader": lambda: server.load(new_graph),
                },
                timeout_sec=120,
            )
            result.raise_errors()
            for text, result_set in zip(texts, batch_out["results"]):
                rows = row_keys(result_set)
                assert rows in (EXPECTED_OLD[text], EXPECTED_NEW[text]), (
                    f"batch result for {text!r} torn: {rows}"
                )

        sweep(scenario, test_id=TEST_ID)

    def test_stats_stay_consistent_under_interleaving(self):
        """queries_served is exact (every request counted once) and the
        cache counters obey hits + misses == lookups after any schedule."""

        def scenario(seed: int) -> None:
            scheduler = InterleaveScheduler(seed)
            server = self._instrumented_server(scheduler)
            requests_per_reader = len(QUERIES)

            def reader():
                for query in QUERIES:
                    server.sparql(query)

            result = scheduler.run(
                {"reader-a": reader, "reader-b": reader}, timeout_sec=120
            )
            result.raise_errors()
            assert server.stats.queries_served == 2 * requests_per_reader
            plan = server._plan_cache.snapshot()
            assert plan["hits"] + plan["misses"] <= 2 * requests_per_reader
            assert plan["size"] <= server._plan_cache.capacity

        sweep(scenario, test_id=TEST_ID)
