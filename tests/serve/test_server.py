"""QueryServer behavior: caches, tenants, admission, EXPLAIN annotation."""

import pytest

from repro.errors import AdmissionRejectedError, ValidationError
from repro.serve import (
    DEFAULT_PLAN_CACHE_SIZE,
    PLAN_CACHE_ENV,
    RESULT_CACHE_ENV,
    QueryServer,
    plan_cache_size_from_env,
)

from .conftest import Q_FOLLOWS, Q_FOLLOWS_ISO, Q_STAR, row_keys


class TestPlanCache:
    def test_isomorphic_queries_share_one_plan(self, plan_only_server):
        first = plan_only_server.sparql(Q_FOLLOWS)
        second = plan_only_server.sparql(Q_FOLLOWS_ISO)
        stats = plan_only_server.stats
        assert stats.plan_cache_misses == 1
        assert stats.plan_cache_hits == 1
        assert plan_only_server.plan_cache_len == 1
        assert row_keys(first) == row_keys(second)

    def test_variable_names_stay_per_caller(self, plan_only_server):
        plan_only_server.sparql(Q_FOLLOWS)
        result = plan_only_server.sparql(Q_FOLLOWS_ISO)
        assert result.variables == ("x", "y")

    def test_modifier_variant_shares_the_plan(self, plan_only_server):
        full = plan_only_server.sparql(Q_FOLLOWS)
        limited = plan_only_server.sparql(Q_FOLLOWS + " LIMIT 2")
        assert plan_only_server.stats.plan_cache_hits == 1
        assert len(full) == 3
        assert len(limited) == 2

    def test_cached_plan_rows_match_cold_engine(self, plan_only_server, engine):
        plan_only_server.sparql(Q_STAR)  # miss: populates
        warm = plan_only_server.sparql(Q_STAR)  # hit: cached plan
        assert plan_only_server.stats.plan_cache_hits == 1
        assert row_keys(warm) == row_keys(engine.sparql(Q_STAR))

    def test_disabled_plan_cache_always_plans(self, engine):
        server = QueryServer(engine, plan_cache_size=0, result_cache_size=0)
        server.sparql(Q_FOLLOWS)
        server.sparql(Q_FOLLOWS)
        assert server.stats.plan_cache_misses == 2
        assert server.stats.plan_cache_hits == 0
        assert server.plan_cache_len == 0


class TestResultCache:
    def test_exact_repeat_skips_execution(self, server):
        first = server.sparql(Q_FOLLOWS)
        second = server.sparql(Q_FOLLOWS)
        assert server.stats.result_cache_hits == 1
        # the hit did not re-plan (only the first, miss-path serving did)
        assert server.stats.plan_cache_misses == 1
        assert row_keys(first) == row_keys(second)

    def test_isomorphic_query_hits_with_its_own_names(self, server):
        server.sparql(Q_FOLLOWS)
        iso = server.sparql(Q_FOLLOWS_ISO)
        assert server.stats.result_cache_hits == 1
        assert iso.variables == ("x", "y")
        assert len(iso) == 3


class TestExplain:
    def test_cold_explain_has_no_cache_marker(self, plan_only_server):
        assert "[cached plan]" not in plan_only_server.explain(Q_FOLLOWS)

    def test_explain_annotates_cached_plans(self, plan_only_server):
        plan_only_server.sparql(Q_FOLLOWS)
        text = plan_only_server.explain(Q_FOLLOWS)
        assert "== Join Tree == [cached plan]" in text
        assert "== Engine Plan == [cached plan]" in text

    def test_explain_does_not_perturb_stats(self, plan_only_server):
        plan_only_server.sparql(Q_FOLLOWS)
        before = plan_only_server.stats.to_dict()
        plan_only_server.explain(Q_FOLLOWS)
        assert plan_only_server.stats.to_dict() == before


class TestTenants:
    def test_snapshot_accounts_per_tenant(self, server):
        server.sparql(Q_FOLLOWS, tenant="alice")
        server.sparql(Q_FOLLOWS, tenant="alice")
        server.sparql(Q_FOLLOWS_ISO, tenant="bob")
        snapshot = server.tenant_snapshot()
        assert snapshot["alice"]["admitted"] == 2
        assert snapshot["bob"]["admitted"] == 1
        assert snapshot["alice"]["active"] == 0

    def test_default_tenant_label(self, server):
        server.sparql(Q_FOLLOWS)
        assert "default" in server.tenant_snapshot()

    def test_capped_tenant_is_shed_and_counted(self, engine):
        server = QueryServer(
            engine,
            plan_cache_size=4,
            result_cache_size=4,
            max_queries_per_tenant=1,
        )
        engine.governor.max_queue_depth = 0  # shed immediately, don't queue
        with engine.governor.admit(tenant="alice"):
            with pytest.raises(AdmissionRejectedError):
                server.sparql(Q_FOLLOWS, tenant="alice")
            # other tenants are unaffected by alice's cap
            server.sparql(Q_FOLLOWS, tenant="bob")
        assert server.stats.admission_rejections == 1
        assert server.tenant_snapshot()["alice"]["rejected"] == 1

    def test_cache_hits_still_pass_admission(self, engine):
        server = QueryServer(
            engine,
            plan_cache_size=4,
            result_cache_size=4,
            max_queries_per_tenant=1,
        )
        engine.governor.max_queue_depth = 0
        server.sparql(Q_FOLLOWS, tenant="alice")  # populate the result cache
        with engine.governor.admit(tenant="alice"):
            with pytest.raises(AdmissionRejectedError):
                server.sparql(Q_FOLLOWS, tenant="alice")  # hit, still capped


class TestConfiguration:
    def test_env_fallback_and_argument_priority(self, engine, monkeypatch):
        monkeypatch.setenv(PLAN_CACHE_ENV, "3")
        assert plan_cache_size_from_env() == 3
        assert QueryServer(engine)._plan_cache.capacity == 3
        assert QueryServer(engine, plan_cache_size=5)._plan_cache.capacity == 5

    def test_default_when_env_unset(self, engine, monkeypatch):
        monkeypatch.delenv(PLAN_CACHE_ENV, raising=False)
        assert QueryServer(engine)._plan_cache.capacity == DEFAULT_PLAN_CACHE_SIZE

    @pytest.mark.parametrize("value", ["abc", "-1", "1.5"])
    def test_invalid_env_rejected(self, engine, monkeypatch, value):
        monkeypatch.setenv(RESULT_CACHE_ENV, value)
        with pytest.raises(ValidationError):
            QueryServer(engine)

    def test_invalid_tenant_cap_rejected(self, engine):
        with pytest.raises(ValidationError):
            QueryServer(engine, max_queries_per_tenant=0)


class TestMetricsSnapshot:
    def test_snapshot_uses_registry_names(self, server):
        from repro.obs import REGISTRY

        server.sparql(Q_FOLLOWS)
        snapshot = server.metrics_snapshot()
        assert snapshot["serve.queries_served"] == 1
        for name in snapshot:
            assert name in REGISTRY, f"snapshot emits unregistered {name}"
