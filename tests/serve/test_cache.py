"""The LRU cache: eviction order, counters, the disabled state, and the
stats invariants under genuinely concurrent access."""

import random
import threading

import pytest

from repro.errors import ValidationError
from repro.serve import LruCache


class TestLruCache:
    def test_put_get_roundtrip(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 0

    def test_miss_counts(self):
        cache = LruCache(2)
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_evicts_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # bump "a": "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_peek_has_no_side_effects(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.hits == 0 and cache.misses == 0
        cache.put("c", 3)  # without the peek bump, "a" is still LRU
        assert cache.peek("a") is None

    def test_put_overwrites_in_place(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2
        assert cache.evictions == 0

    def test_evict_and_clear(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.evict("a")
        assert cache.peek("a") is None and len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1  # counters survive clear()

    def test_capacity_zero_disables(self):
        cache = LruCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.capacity == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            LruCache(-1)

    def test_hit_rate(self):
        cache = LruCache(2)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == 0.5

    def test_put_reports_its_own_eviction(self):
        """put() returns how many LRU entries *this* insert displaced, so
        concurrent callers never need a racy before/after counter read."""
        cache = LruCache(2)
        assert cache.put("a", 1) == 0
        assert cache.put("b", 2) == 0
        assert cache.put("a", 10) == 0  # refresh, not an eviction
        assert cache.put("c", 3) == 1  # displaces "b"
        assert cache.evictions == 1

    def test_reset_counters_keeps_entries(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.reset_counters()
        assert cache.snapshot() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "size": 1,
        }
        assert cache.get("a") == 1

    def test_snapshot_is_complete(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.snapshot() == {
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "size": 2,
        }


class TestConcurrentHammering:
    """N real threads hammering get/put/evict on a capacity-2 cache, with
    barrier checkpoints asserting the cross-counter invariants on an
    atomic :meth:`LruCache.snapshot` while every thread is quiesced."""

    THREADS = 4
    CHECKPOINTS = 5
    OPS_PER_PHASE = 120
    KEYS = tuple(f"k{i}" for i in range(6))

    def test_stats_invariants_hold_at_every_checkpoint(self):
        cache = LruCache(2)
        # Per-thread exact op accounting, summed only while the barrier
        # holds every worker parked (so the totals cannot be mid-update).
        lookups = [0] * self.THREADS
        puts = [0] * self.THREADS
        explicit_evictions = [0] * self.THREADS
        lru_evictions = [0] * self.THREADS
        checks = {"count": 0}
        errors: list[BaseException] = []

        def checkpoint():
            snapshot = cache.snapshot()
            assert snapshot["hits"] >= 0 and snapshot["misses"] >= 0
            assert snapshot["hits"] + snapshot["misses"] == sum(lookups), (
                f"lookup accounting torn at checkpoint: {snapshot} "
                f"vs {sum(lookups)} issued"
            )
            assert snapshot["size"] <= cache.capacity
            assert (
                snapshot["evictions"]
                == sum(lru_evictions) + sum(explicit_evictions)
            )
            assert snapshot["evictions"] <= sum(puts) + sum(explicit_evictions)
            checks["count"] += 1

        barrier = threading.Barrier(self.THREADS, action=checkpoint)

        def worker(worker_id: int) -> None:
            rng = random.Random(worker_id)
            try:
                for _ in range(self.CHECKPOINTS):
                    for _ in range(self.OPS_PER_PHASE):
                        key = self.KEYS[rng.randrange(len(self.KEYS))]
                        roll = rng.random()
                        if roll < 0.5:
                            cache.get(key)
                            lookups[worker_id] += 1
                        elif roll < 0.9:
                            lru_evictions[worker_id] += cache.put(key, worker_id)
                            puts[worker_id] += 1
                        else:
                            if cache.evict(key):
                                explicit_evictions[worker_id] += 1
                    barrier.wait()
            except BaseException as exc:  # surfaced after join
                errors.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(worker_id,), name=f"hammer-{worker_id}")
            for worker_id in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not any(thread.is_alive() for thread in threads)
        if errors:
            raise errors[0]
        assert checks["count"] == self.CHECKPOINTS
        final = cache.snapshot()
        assert final["hits"] + final["misses"] == sum(lookups)
        assert final["size"] <= cache.capacity
