"""The LRU cache: eviction order, counters, and the disabled state."""

import pytest

from repro.errors import ValidationError
from repro.serve import LruCache


class TestLruCache:
    def test_put_get_roundtrip(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 0

    def test_miss_counts(self):
        cache = LruCache(2)
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_evicts_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # bump "a": "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_peek_has_no_side_effects(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.hits == 0 and cache.misses == 0
        cache.put("c", 3)  # without the peek bump, "a" is still LRU
        assert cache.peek("a") is None

    def test_put_overwrites_in_place(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2
        assert cache.evictions == 0

    def test_evict_and_clear(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.evict("a")
        assert cache.peek("a") is None and len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1  # counters survive clear()

    def test_capacity_zero_disables(self):
        cache = LruCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.capacity == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            LruCache(-1)

    def test_hit_rate(self):
        cache = LruCache(2)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == 0.5
