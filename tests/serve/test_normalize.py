"""Query normalization: isomorphic queries collapse, distinct ones don't."""

from repro.serve import canonicalize, plan_shape
from repro.sparql.parser import parse_sparql

from .conftest import Q_FOLLOWS, Q_FOLLOWS_ISO


class TestCanonicalize:
    def test_isomorphic_queries_share_one_canonical_form(self):
        a = canonicalize(parse_sparql(Q_FOLLOWS))
        b = canonicalize(parse_sparql(Q_FOLLOWS_ISO))
        assert a == b

    def test_canonical_variables_are_positional(self):
        canonical = canonicalize(parse_sparql(Q_FOLLOWS))
        names = {v.name for v in canonical.projection}
        assert names <= {"v0", "v1", "v2"}

    def test_canonicalize_is_idempotent(self):
        once = canonicalize(parse_sparql(Q_FOLLOWS))
        assert canonicalize(once) == once

    def test_distinct_structures_stay_distinct(self):
        shared = canonicalize(
            parse_sparql("SELECT ?s WHERE { ?s <http://ex/p> ?s }")
        )
        free = canonicalize(
            parse_sparql("SELECT ?s WHERE { ?s <http://ex/p> ?o }")
        )
        assert shared != free

    def test_renaming_is_injective_across_positions(self):
        """?a and ?b must not both map to the same canonical variable."""
        joined = canonicalize(
            parse_sparql(
                "SELECT ?a WHERE { ?a <http://ex/p> ?b . ?b <http://ex/q> ?a }"
            )
        )
        chain = canonicalize(
            parse_sparql(
                "SELECT ?a WHERE { ?a <http://ex/p> ?b . ?c <http://ex/q> ?a }"
            )
        )
        assert joined != chain

    def test_filters_participate_in_the_canonical_form(self):
        plain = canonicalize(parse_sparql(Q_FOLLOWS))
        filtered = canonicalize(
            parse_sparql(
                "SELECT ?s ?o WHERE { ?s <http://ex/follows> ?o . "
                "FILTER(?o != 5) }"
            )
        )
        assert plain != filtered


class TestPlanShape:
    def test_modifier_variants_share_one_shape(self):
        base = plan_shape(canonicalize(parse_sparql(Q_FOLLOWS)))
        limited = plan_shape(
            canonicalize(parse_sparql(Q_FOLLOWS + " LIMIT 2"))
        )
        ordered = plan_shape(
            canonicalize(parse_sparql(Q_FOLLOWS + " ORDER BY ?s"))
        )
        assert base == limited == ordered

    def test_shape_strips_only_modifiers(self):
        shape = plan_shape(canonicalize(parse_sparql(Q_FOLLOWS + " LIMIT 2")))
        assert shape.limit is None
        assert shape.offset is None
        assert shape.order_by == ()
        assert shape.patterns  # the body survives

    def test_distinct_is_part_of_the_shape(self):
        """DISTINCT changes the plan (a dedup operator), so it must not be
        stripped with the post-execution modifiers."""
        plain = plan_shape(canonicalize(parse_sparql(Q_FOLLOWS)))
        distinct = plan_shape(
            canonicalize(
                parse_sparql(
                    "SELECT DISTINCT ?s ?o WHERE "
                    "{ ?s <http://ex/follows> ?o }"
                )
            )
        )
        assert plain != distinct
