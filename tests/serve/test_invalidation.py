"""Plan-cache invalidation: reloads, epoch drift, and the PV401 lineage check.

The dangerous failure mode of a plan cache is serving a *stale* plan — one
whose table references point at a previous dataset or partitioning layout.
Three defenses are tested here: cache keys embed the plan epoch (stale
entries can never hit), reloads clear the caches outright, and the PV401
re-verification evicts any entry whose recorded lineage disagrees with the
live engine even if it somehow ended up under a current key.
"""

import pytest

from repro.analysis import verify_cached_plan
from repro.core import ProstEngine
from repro.rdf import Graph
from repro.serve import PlanEntry, QueryServer, plan_shape

from .conftest import GRAPH_NT, Q_FOLLOWS, RELOAD_NT


class TestVerifyCachedPlan:
    def test_matching_epochs_are_clean(self):
        epoch = (1, "mixed", "full")
        assert verify_cached_plan(epoch, epoch) == []

    def test_drifted_component_is_flagged_as_pv401(self):
        diagnostics = verify_cached_plan((1, "mixed"), (2, "mixed"))
        assert len(diagnostics) == 1
        assert diagnostics[0].code == "PV401"
        assert "component 0" in diagnostics[0].message
        assert "evict and replan" in diagnostics[0].message

    def test_arity_change_is_flagged(self):
        assert verify_cached_plan((1,), (1, "mixed"))

    def test_strategy_knob_changes_the_epoch(self):
        """A partitioning-knob difference (mixed vs vp) must show up as
        lineage drift — the exact situation where reusing a cached plan
        would execute against the wrong table layout."""
        graph = Graph.from_ntriples(GRAPH_NT)
        mixed = ProstEngine(strategy="mixed")
        mixed.load(graph)
        vp = ProstEngine(strategy="vp")
        vp.load(graph)
        assert mixed.plan_epoch != vp.plan_epoch
        assert verify_cached_plan(mixed.plan_epoch, vp.plan_epoch)


class TestReloadInvalidation:
    def test_reload_clears_both_caches(self, server):
        server.sparql(Q_FOLLOWS)
        assert server.plan_cache_len == 1
        assert server.result_cache_len == 1
        server.load(Graph.from_ntriples(RELOAD_NT))
        assert server.plan_cache_len == 0
        assert server.result_cache_len == 0

    def test_post_reload_results_come_from_the_new_dataset(self, server):
        before = server.sparql(Q_FOLLOWS)
        assert len(before) == 3
        server.load(Graph.from_ntriples(RELOAD_NT))
        after = server.sparql(Q_FOLLOWS)
        # A stale hit would have returned the old dataset's 3 rows; the
        # reload bumped the epoch, so the query replans and re-executes.
        assert len(after) == 1
        assert server.stats.plan_cache_misses == 2
        assert server.stats.plan_cache_hits == 0

    def test_reload_bumps_the_plan_epoch(self, server):
        before = server.engine.plan_epoch
        server.load(Graph.from_ntriples(RELOAD_NT))
        assert server.engine.plan_epoch != before

    def test_stale_epoch_key_cannot_hit(self, server):
        """Entries keyed under a pre-reload epoch are unreachable even
        without the explicit clear (the epoch is part of the key)."""
        server.sparql(Q_FOLLOWS)
        old_epoch = server.engine.plan_epoch
        shape = plan_shape(
            server.canonicalize_cached(server._parse(Q_FOLLOWS))
        )
        old_entry = server._plan_cache.peek((shape, old_epoch))
        server.engine.load(Graph.from_ntriples(RELOAD_NT))  # bypass server.load
        server._plan_cache.put((shape, old_epoch), old_entry)  # resurrect
        server.sparql(Q_FOLLOWS)
        # The resurrected entry was never consulted: new epoch, new key.
        assert server.stats.plan_cache_hits == 0
        assert server.stats.plan_cache_misses == 2


class TestLineageDefenseInDepth:
    def test_tampered_entry_is_evicted_and_replanned(self, plan_only_server):
        """A wrong-lineage entry under a *current* key — impossible through
        the public API, simulated here — must be caught by the PV401
        re-verification, evicted, and replaced by a fresh plan."""
        server = plan_only_server
        server.sparql(Q_FOLLOWS)
        epoch = server.engine.plan_epoch
        shape = plan_shape(server.canonicalize_cached(server._parse(Q_FOLLOWS)))
        good = server._plan_cache.peek((shape, epoch))
        assert good is not None
        server._plan_cache.put(
            (shape, epoch),
            PlanEntry(good.frame, good.description, ("tampered", "lineage")),
        )
        evictions_before = server.stats.plan_cache_evictions
        result = server.sparql(Q_FOLLOWS)
        assert len(result) == 3  # still the right answer
        assert server.stats.plan_cache_evictions == evictions_before + 1
        assert server.stats.plan_cache_hits == 0  # the tampered entry never "hit"
        restored = server._plan_cache.peek((shape, epoch))
        assert restored is not None and restored.epoch == epoch

    def test_pv401_is_a_registered_diagnostic_code(self):
        from repro.analysis.diagnostics import CODES

        assert "PV401" in CODES
