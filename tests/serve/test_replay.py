"""The workload-replay benchmark: math, payload shape, and a small live run."""

import json

import pytest

from repro.serve.replay import (
    REPLAY_PHASES,
    percentile,
    render_replay,
    run_replay,
    write_replay_json,
)


class TestPercentile:
    def test_nearest_rank(self):
        samples = [float(n) for n in range(1, 11)]  # 1..10
        assert percentile(samples, 0.50) == 5.0
        assert percentile(samples, 0.95) == 10.0
        assert percentile(samples, 0.99) == 10.0

    def test_single_sample(self):
        assert percentile([42.0], 0.50) == 42.0
        assert percentile([42.0], 0.99) == 42.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestPhaseTable:
    def test_the_three_phases(self):
        assert set(REPLAY_PHASES) == {"cold", "warm_plan", "warm_full"}

    def test_cold_disables_both_caches(self):
        plan, result, warm = REPLAY_PHASES["cold"]
        assert plan(10) == 0 and result(10) == 0 and warm is False

    def test_warm_capacities_cover_the_pool(self):
        plan, result, warm = REPLAY_PHASES["warm_full"]
        assert plan(10) >= 10 and result(10) >= 10 and warm is True


@pytest.fixture(scope="module")
def payload():
    """One small live replay, shared by the assertions below (the real
    artifact is produced by ``prost-repro replay`` at a larger scale)."""
    return run_replay(scale=60, seed=7, clients=2, requests_per_client=4)


class TestRunReplay:
    def test_payload_shape(self, payload):
        assert payload["benchmark"] == "serve-replay"
        assert set(payload["phases"]) == set(REPLAY_PHASES)
        for phase in payload["phases"].values():
            assert phase["requests"] == 8
            assert phase["p50_ms"] <= phase["p95_ms"] <= phase["p99_ms"]

    def test_warm_plan_phase_hits_the_plan_cache(self, payload):
        warm = payload["phases"]["warm_plan"]
        assert warm["plan_cache"]["hits"] == 8  # every request, pre-warmed
        assert warm["stats"]["plan_cache_misses"] == 0
        assert payload["plan_cache_hit_rate"] == 1.0

    def test_warm_full_phase_hits_the_result_cache(self, payload):
        warm = payload["phases"]["warm_full"]
        assert warm["result_cache"]["hits"] == 8
        assert payload["result_cache_hit_rate"] == 1.0

    def test_cold_phase_runs_the_full_pipeline(self, payload):
        cold = payload["phases"]["cold"]
        assert cold["stats"]["plan_cache_hits"] == 0
        assert cold["stats"]["result_cache_hits"] == 0

    def test_batch_report(self, payload):
        batch = payload["batch"]
        assert batch["queries"] == batch["distinct"] * 3
        assert batch["batched_queries"] == batch["queries"] - batch["distinct"]
        assert batch["rows_returned"] >= 0

    def test_json_roundtrip(self, payload, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        write_replay_json(payload, str(path))
        assert json.loads(path.read_text()) == json.loads(json.dumps(payload))

    def test_render_is_plain_text(self, payload):
        text = render_replay(payload)
        assert "serve replay" in text
        assert "p50" in text and "batch:" in text
