"""Shared fixtures for the serving-layer tests: one tiny graph, one engine.

The graph is a three-node `follows` cycle plus two `likes` edges — small
enough that every expected row set can be written out by hand, rich enough
to exercise joins, self-joins, and property-table grouping.
"""

import pytest

from repro.core import ProstEngine
from repro.rdf import Graph
from repro.serve import QueryServer

GRAPH_NT = """
<http://ex/a> <http://ex/follows> <http://ex/b> .
<http://ex/b> <http://ex/follows> <http://ex/c> .
<http://ex/c> <http://ex/follows> <http://ex/a> .
<http://ex/a> <http://ex/likes> <http://ex/c> .
<http://ex/b> <http://ex/likes> <http://ex/c> .
"""

#: A different dataset for reload tests: one lone edge.
RELOAD_NT = "<http://ex/x> <http://ex/follows> <http://ex/y> ."

Q_FOLLOWS = "SELECT ?s ?o WHERE { ?s <http://ex/follows> ?o }"
#: Isomorphic to Q_FOLLOWS up to variable renaming.
Q_FOLLOWS_ISO = "SELECT ?x ?y WHERE { ?x <http://ex/follows> ?y }"
#: Two-hop self-join over the follows table.
Q_TWO_HOP = (
    "SELECT ?a ?c WHERE { ?a <http://ex/follows> ?b . "
    "?b <http://ex/follows> ?c }"
)
#: Same subject, two predicates — a property-table shaped query.
Q_STAR = (
    "SELECT ?s ?o WHERE { ?s <http://ex/follows> ?o . "
    "?s <http://ex/likes> ?c }"
)


@pytest.fixture()
def engine() -> ProstEngine:
    engine = ProstEngine()
    engine.load(Graph.from_ntriples(GRAPH_NT))
    return engine


@pytest.fixture()
def server(engine) -> QueryServer:
    """A server with both caches on (small, but larger than the tests need)."""
    return QueryServer(engine, plan_cache_size=8, result_cache_size=8)


@pytest.fixture()
def plan_only_server(engine) -> QueryServer:
    """Result cache disabled: every serving must *execute* (possibly via a
    cached plan) — the fixture for asserting plan-cache behavior."""
    return QueryServer(engine, plan_cache_size=8, result_cache_size=0)


def row_keys(result):
    """Hashable multiset-comparable view of a ResultSet's rows."""
    return sorted(
        tuple(None if term is None else term.n3() for term in row)
        for row in result.rows
    )
