"""Serve-mode differential equivalence: served == cold, on fuzzed corpora.

``REPRO_SERVE_MODE=1`` makes the differential harness wrap both PRoST
engines in :class:`~repro.testing.differential.ServedProstEngine`, which
runs every query cold, via the plan cache, and as a two-copy batch, and
demands all three agree before the oracle comparison even happens. These
tests run a slice of the fuzz corpus that way — with a deliberately tiny
plan cache so evictions and replans are exercised — plus direct unit
checks of the wrapper itself.
"""

from collections import Counter

import pytest

from repro.rdf import Graph
from repro.testing import BruteForceOracle, run_fuzz
from repro.testing.differential import (
    ServedProstEngine,
    row_key,
    serve_mode_from_env,
)

from .conftest import GRAPH_NT, Q_FOLLOWS, Q_STAR, Q_TWO_HOP


class TestServeModeEnv:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_MODE", raising=False)
        assert serve_mode_from_env() is False

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("0", False), ("", False),
    ])
    def test_parsing(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_SERVE_MODE", value)
        assert serve_mode_from_env() is expected


class TestServedProstEngine:
    def test_matches_oracle_on_handwritten_queries(self):
        graph = Graph.from_ntriples(GRAPH_NT)
        oracle = BruteForceOracle(graph)
        served = ServedProstEngine("mixed")
        served.load(graph)
        from repro.sparql.parser import parse_sparql

        for text in (Q_FOLLOWS, Q_STAR, Q_TWO_HOP):
            query = parse_sparql(text)
            expected = Counter(map(row_key, oracle.evaluate(query)))
            actual = Counter(map(row_key, served.sparql(query).rows))
            assert actual == expected, text

    def test_exercises_cached_plan_and_batch_paths(self):
        served = ServedProstEngine("mixed")
        served.load(Graph.from_ntriples(GRAPH_NT))
        served.sparql(Q_FOLLOWS)
        stats = served.server.stats
        assert stats.plan_cache_hits >= 1  # the second (cached) run hit
        assert stats.batched_queries >= 1  # the two-copy batch deduplicated
        assert stats.result_cache_hits == 0  # result cache must stay off


class TestServeModeFuzz:
    def test_fuzz_slice_through_the_serving_layer(self, monkeypatch):
        """Three seeds of the PRoST systems with a 2-entry plan cache (the
        CI leg runs the full corpus; this keeps tier-1 honest and fast)."""
        monkeypatch.setenv("REPRO_SERVE_MODE", "1")
        monkeypatch.setenv("REPRO_SERVE_PLAN_CACHE", "2")
        report = run_fuzz(
            base_seed=0,
            iterations=3,
            queries_per_graph=5,
            systems=("prost-mixed", "prost-vp"),
            shrink=False,
        )
        assert report.ok, report.summary() + "\n\n" + "\n\n".join(
            m.format() for m in report.mismatches
        )
