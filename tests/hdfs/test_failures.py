"""Datanode failure and re-replication tests."""

import pytest

from repro.errors import StorageError
from repro.hdfs import SimulatedHdfs


def make_fs(**kwargs) -> SimulatedHdfs:
    defaults = {"num_datanodes": 4, "block_size": 16, "replication": 2}
    defaults.update(kwargs)
    return SimulatedHdfs(**defaults)


class TestFailNode:
    def test_blocks_re_replicated_onto_survivors(self):
        fs = make_fs()
        fs.write("/a", b"x" * 64)
        repaired = fs.fail_node(0)
        assert repaired >= 1
        for replicas in fs.block_locations("/a"):
            assert 0 not in replicas
            assert len(replicas) == 2

    def test_data_still_readable_after_failure(self):
        fs = make_fs()
        payload = b"y" * 100
        fs.write("/a", payload)
        fs.fail_node(1)
        assert fs.read("/a") == payload

    def test_replication_factor_restored(self):
        fs = make_fs(num_datanodes=5, replication=3)
        fs.write("/a", b"z" * 80)
        fs.fail_node(2)
        for replicas in fs.block_locations("/a"):
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_failed_and_live_node_accounting(self):
        fs = make_fs()
        fs.fail_node(3)
        assert fs.failed_nodes == {3}
        assert fs.live_nodes == 3

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            make_fs().fail_node(99)

    def test_replication_one_loses_data(self):
        fs = make_fs(replication=1)
        fs.write("/a", b"q" * 64)
        # Some block lives only on one node; failing every node one by one
        # must eventually raise a data-loss error.
        with pytest.raises(StorageError):
            for node in range(fs.num_datanodes):
                fs.fail_node(node)

    def test_writes_after_failure_avoid_dead_node(self):
        fs = make_fs()
        fs.fail_node(0)
        fs.write("/b", b"w" * 64)
        for replicas in fs.block_locations("/b"):
            assert 0 not in replicas

    def test_cascading_failures_keep_data_alive(self):
        fs = make_fs(num_datanodes=5, replication=3)
        payload = b"p" * 200
        fs.write("/a", payload)
        fs.fail_node(0)
        fs.fail_node(1)
        assert fs.read("/a") == payload
        for replicas in fs.block_locations("/a"):
            assert not set(replicas) & {0, 1}
