"""Simulated HDFS tests: namespace, blocks, replication, accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FileAlreadyExistsError, FileNotFoundInHdfsError
from repro.hdfs import SimulatedHdfs


def make_fs(**kwargs) -> SimulatedHdfs:
    defaults = {"num_datanodes": 4, "block_size": 64, "replication": 2}
    defaults.update(kwargs)
    return SimulatedHdfs(**defaults)


class TestReadWrite:
    def test_round_trip(self):
        fs = make_fs()
        fs.write("/data/a.bin", b"hello world")
        assert fs.read("/data/a.bin") == b"hello world"

    def test_paths_are_normalized(self):
        fs = make_fs()
        fs.write("data/a.bin", b"x")
        assert fs.exists("/data/a.bin")
        assert fs.read("/data/a.bin") == b"x"

    def test_overwrite_requires_flag(self):
        fs = make_fs()
        fs.write("/a", b"1")
        with pytest.raises(FileAlreadyExistsError):
            fs.write("/a", b"2")
        fs.write("/a", b"2", overwrite=True)
        assert fs.read("/a") == b"2"

    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundInHdfsError):
            make_fs().read("/nope")

    def test_delete(self):
        fs = make_fs()
        fs.write("/a", b"1")
        fs.delete("/a")
        assert not fs.exists("/a")
        with pytest.raises(FileNotFoundInHdfsError):
            fs.delete("/a")

    def test_delete_prefix(self):
        fs = make_fs()
        fs.write("/t/a", b"1")
        fs.write("/t/b", b"2")
        fs.write("/u/c", b"3")
        assert fs.delete_prefix("/t") == 2
        assert fs.list_files() == ["/u/c"]

    def test_invalid_path_rejected(self):
        with pytest.raises(ValueError):
            make_fs().write("/dir/", b"x")


class TestBlocks:
    def test_file_split_into_blocks(self):
        fs = make_fs(block_size=10)
        fs.write("/big", b"x" * 25)
        info = fs.file_info("/big")
        assert [b.size for b in info.blocks] == [10, 10, 5]

    def test_block_locations_replicated(self):
        fs = make_fs(replication=2)
        fs.write("/a", b"x" * 100)
        for replicas in fs.block_locations("/a"):
            assert len(replicas) == 2
            assert len(set(replicas)) == 2

    def test_preferred_node_pins_primaries(self):
        fs = make_fs(block_size=8)
        fs.write("/a", b"x" * 30, preferred_node=3)
        assert all(b.primary_node == 3 for b in fs.file_info("/a").blocks)


class TestAccounting:
    def test_logical_vs_physical_size(self):
        fs = make_fs(replication=2)
        fs.write("/a", b"x" * 100)
        assert fs.logical_size() == 100
        assert fs.physical_size() == 200

    def test_prefix_scoped_sizes(self):
        fs = make_fs()
        fs.write("/t/a", b"x" * 10)
        fs.write("/u/b", b"x" * 20)
        assert fs.logical_size("/t") == 10
        assert fs.logical_size("/u") == 20

    def test_node_usage_covers_all_replicas(self):
        fs = make_fs(replication=2, block_size=16)
        fs.write("/a", b"x" * 64)
        usage = fs.node_usage()
        assert sum(usage.values()) == fs.physical_size()

    def test_list_files_sorted(self):
        fs = make_fs()
        fs.write("/b", b"1")
        fs.write("/a", b"1")
        assert fs.list_files() == ["/a", "/b"]


@given(st.binary(max_size=500), st.integers(min_value=1, max_value=64))
@settings(max_examples=50, deadline=None)
def test_property_any_payload_round_trips(payload, block_size):
    """Payloads of any size and block granularity round-trip exactly."""
    fs = SimulatedHdfs(num_datanodes=3, block_size=block_size)
    fs.write("/p", payload)
    assert fs.read("/p") == payload
    assert fs.logical_size() == len(payload)
    assert sum(b.size for b in fs.file_info("/p").blocks) == len(payload)
