"""Block splitting and placement tests."""

import pytest

from repro.hdfs.blocks import Block, plan_placement, split_into_blocks


class TestSplit:
    def test_exact_multiple(self):
        assert split_into_blocks(256, 128) == [128, 128]

    def test_remainder_block(self):
        assert split_into_blocks(300, 128) == [128, 128, 44]

    def test_small_file_single_block(self):
        assert split_into_blocks(5, 128) == [5]

    def test_empty_file_gets_one_empty_block(self):
        assert split_into_blocks(0, 128) == [0]

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            split_into_blocks(10, 0)
        with pytest.raises(ValueError):
            split_into_blocks(-1, 128)


class TestPlacement:
    def test_replicas_are_distinct_nodes(self):
        replicas = plan_placement(block_id=0, num_datanodes=5, replication=3)
        assert len(set(replicas)) == 3

    def test_replication_capped_at_cluster_size(self):
        replicas = plan_placement(block_id=0, num_datanodes=2, replication=3)
        assert len(replicas) == 2

    def test_preferred_node_is_primary(self):
        replicas = plan_placement(block_id=9, num_datanodes=5, replication=2, preferred_node=3)
        assert replicas[0] == 3

    def test_placement_is_deterministic(self):
        a = plan_placement(block_id=7, num_datanodes=4, replication=3)
        b = plan_placement(block_id=7, num_datanodes=4, replication=3)
        assert a == b

    def test_different_blocks_spread_primaries(self):
        primaries = {plan_placement(i, 4, 1)[0] for i in range(8)}
        assert primaries == {0, 1, 2, 3}

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            plan_placement(0, 0, 1)

    def test_block_primary_property(self):
        block = Block(block_id=1, size=10, replicas=(2, 3))
        assert block.primary_node == 2
