"""Read-time replica failover tests (``fail_node(..., repair=False)``).

Between a datanode crash and the namenode's re-replication pass, readers
must fail over to surviving replicas block by block, returning bytes
identical to the healthy read — and only raise ``BlockUnavailableError``
when every replica of some block is dead.
"""

import pytest

from repro.errors import BlockUnavailableError, ExecutionError, StorageError
from repro.hdfs import SimulatedHdfs

PAYLOAD = bytes(range(256)) * 3  # multiple blocks, position-distinct bytes


def make_fs(**kwargs) -> SimulatedHdfs:
    defaults = {"num_datanodes": 4, "block_size": 64, "replication": 2}
    defaults.update(kwargs)
    return SimulatedHdfs(**defaults)


class TestReplicaFailover:
    def test_reads_identical_after_each_primary_dies(self):
        # For every block of the file, kill that block's primary replica
        # (without repair) on a fresh cluster; the read must still
        # reassemble the exact original payload from the survivors.
        primaries = {
            block.primary_node
            for block in make_fs().write("/a", PAYLOAD).blocks
        }
        assert len(primaries) > 1  # blocks spread over several primaries
        for node in primaries:
            fs = make_fs()
            fs.write("/a", PAYLOAD)
            fs.fail_node(node, repair=False)
            assert fs.read("/a") == PAYLOAD
            assert fs.failover_reads >= 1

    def test_failover_reads_counted(self):
        fs = make_fs()
        fs.write("/a", PAYLOAD)
        assert fs.read("/a") == PAYLOAD
        assert fs.failover_reads == 0  # healthy cluster: no failover
        primary = fs.file_info("/a").blocks[0].primary_node
        fs.fail_node(primary, repair=False)
        fs.read("/a")
        assert fs.failover_reads >= 1

    def test_unrepaired_node_keeps_dead_replica_entries(self):
        fs = make_fs()
        fs.write("/a", PAYLOAD)
        primary = fs.file_info("/a").blocks[0].primary_node
        repaired = fs.fail_node(primary, repair=False)
        assert repaired == 0
        # The replica lists still mention the dead node (no re-replication).
        assert any(primary in replicas for replicas in fs.block_locations("/a"))

    def test_untouched_blocks_still_served_by_primary(self):
        fs = make_fs(num_datanodes=6, replication=2)
        fs.write("/a", PAYLOAD)
        blocks = fs.file_info("/a").blocks
        fs.fail_node(blocks[0].primary_node, repair=False)
        before = fs.failover_reads
        fs.read("/a")
        # Exactly the blocks whose primary died fail over, no others.
        dead = fs.failed_nodes
        expected = sum(1 for b in blocks if b.primary_node in dead)
        assert fs.failover_reads - before == expected

    def test_all_replicas_dead_raises_block_unavailable(self):
        fs = make_fs(num_datanodes=3, replication=2)
        fs.write("/a", PAYLOAD)
        doomed = fs.file_info("/a").blocks[0]
        for node in doomed.replicas:
            fs.fail_node(node, repair=False)
        with pytest.raises(BlockUnavailableError) as excinfo:
            fs.read("/a")
        assert f"block {doomed.block_id}" in str(excinfo.value)

    def test_block_unavailable_is_execution_and_storage_error(self):
        # The engine catches ExecutionError; legacy HDFS callers catch
        # StorageError. The failover error must satisfy both.
        assert issubclass(BlockUnavailableError, ExecutionError)
        assert issubclass(BlockUnavailableError, StorageError)

    def test_replication_three_survives_two_node_loss(self):
        fs = make_fs(num_datanodes=5, replication=3)
        fs.write("/a", PAYLOAD)
        fs.fail_node(0, repair=False)
        fs.fail_node(1, repair=False)
        assert fs.read("/a") == PAYLOAD

    def test_write_after_unrepaired_failure_avoids_dead_node(self):
        fs = make_fs()
        fs.fail_node(2, repair=False)
        fs.write("/b", PAYLOAD)
        for replicas in fs.block_locations("/b"):
            assert 2 not in replicas
        assert fs.read("/b") == PAYLOAD

    def test_repair_mode_still_raises_on_last_replica_loss(self):
        fs = make_fs(replication=1)
        fs.write("/a", b"q" * 64)
        with pytest.raises(BlockUnavailableError):
            for node in range(fs.num_datanodes):
                fs.fail_node(node)
