"""Tier-1 fixed-seed differential fuzzing: 200 cases across all engines.

Twenty fixed seeds × ten queries each. Every case runs on the brute-force
oracle, PRoST (mixed and vp), S2RDF, SPARQLGX, and Rya; solutions must be
multiset-equal everywhere. A failure prints the seed, the shrunken graph and
query, and a one-command replay line.

The extended (randomized-range) run is opt-in — see ``conftest.py``.
"""

from __future__ import annotations

import pytest

from repro.testing import DifferentialRunner, run_fuzz
from repro.testing.querygen import QueryGenConfig

#: Tier-1 seeds: 20 seeds x 10 queries/graph = 200 fixed differential cases.
TIER1_SEEDS = tuple(range(20))
QUERIES_PER_GRAPH = 10


@pytest.fixture(scope="module")
def runner() -> DifferentialRunner:
    return DifferentialRunner(queries_per_graph=QUERIES_PER_GRAPH)


@pytest.mark.parametrize("seed", TIER1_SEEDS)
def test_fixed_seed_differential(runner, seed):
    mismatches = runner.run_seed(seed)
    assert not mismatches, "\n\n".join(m.format() for m in mismatches)


def test_generation_is_deterministic(runner):
    """The same seed must always denote the same (graph, queries) case —
    replay depends on it."""
    graph_a, queries_a = runner.generate_case(TIER1_SEEDS[0])
    graph_b, queries_b = runner.generate_case(TIER1_SEEDS[0])
    assert graph_a.to_ntriples() == graph_b.to_ntriples()
    assert queries_a == queries_b


def test_aggressive_config_smoke():
    """A handful of cases at cranked-up probabilities (unbound predicates,
    repeated variables, aliasing) — the shapes that found real bugs."""
    aggressive = QueryGenConfig(
        max_patterns=6,
        constant_subject_prob=0.3,
        constant_object_prob=0.5,
        unbound_predicate_prob=0.35,
        repeated_predicate_var_prob=0.5,
        variable_alias_prob=0.35,
        miss_term_prob=0.2,
        filter_prob=0.7,
        distinct_prob=0.4,
        limit_prob=0.4,
    )
    runner = DifferentialRunner(query_config=aggressive, queries_per_graph=6)
    mismatches = []
    for seed in (1000, 1001, 1002):
        mismatches.extend(runner.run_seed(seed))
    assert not mismatches, "\n\n".join(m.format() for m in mismatches)


@pytest.mark.fuzz
def test_extended_fuzz(extended_fuzz_settings):
    """Opt-in long run over a seed range (see module docstring)."""
    base_seed, iterations = extended_fuzz_settings
    report = run_fuzz(base_seed=base_seed, iterations=iterations)
    assert report.ok, report.summary() + "\n\n" + "\n\n".join(
        m.format() for m in report.mismatches
    )
