"""Configuration for the differential fuzzing tests.

The fixed-seed subset (``test_differential.py``) runs in tier-1 by default.
The extended run is opt-in: ``pytest --fuzz-iterations N tests/fuzz`` or
``REPRO_FUZZ_ITERATIONS=N pytest tests/fuzz``; ``REPRO_FUZZ_SEED`` picks the
base seed. Both knobs resolve through
:func:`repro.testing.differential.fuzz_defaults`, the same code path the
``prost-repro fuzz`` CLI subcommand uses.
"""

from __future__ import annotations

import pytest

from repro.testing import fuzz_defaults


@pytest.fixture
def extended_fuzz_settings(request) -> tuple[int, int]:
    """(base_seed, iterations) for the opt-in extended run, or skip."""
    option = request.config.getoption("--fuzz-iterations")
    seed, iterations = fuzz_defaults(seed=0, iterations=option or 0)
    if option is not None:  # the CLI flag wins over the environment
        iterations = option
    if iterations <= 0:
        pytest.skip(
            "extended fuzzing is opt-in: pass --fuzz-iterations N or set "
            "REPRO_FUZZ_ITERATIONS=N"
        )
    return seed, iterations
