"""Dictionary-ID execution equivalence, driven by the fuzzer's generators.

The default (ID) mode is exercised by the whole suite, including the fixed
200-seed differential cases in ``test_differential.py``. These tests pin
the ablation itself: for random graphs and queries, every engine must
produce the same decoded multiset of solutions whether cells carry
dictionary :class:`TermId` integers or the legacy N-Triples strings.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.baselines import Rya, S2Rdf, SparqlGx, SparqlGxDirect
from repro.core import ProstEngine
from repro.rdf import ids_enabled, term_ids
from repro.testing import DifferentialRunner
from repro.testing.differential import row_key

SEEDS = (0, 1, 2)

ENGINE_FACTORIES = {
    "prost-mixed": lambda: ProstEngine(strategy="mixed"),
    "prost-vp": lambda: ProstEngine(strategy="vp"),
    "s2rdf": S2Rdf,
    "sparqlgx": SparqlGx,
    "sparqlgx-sde": SparqlGxDirect,
    "rya": Rya,
}


@pytest.fixture(scope="module")
def runner() -> DifferentialRunner:
    return DifferentialRunner(queries_per_graph=6)


def test_suite_runs_with_ids_enabled():
    """The acceptance criterion: the fixed-seed fuzz cases (and everything
    else in tier 1) execute with ID cells, not the strings fallback."""
    assert ids_enabled()


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_ids_and_strings_modes_agree(runner, engine_name, seed):
    graph, queries = runner.generate_case(seed)

    def run_all(enabled: bool) -> list[Counter]:
        with term_ids(enabled):
            engine = ENGINE_FACTORIES[engine_name]()
            engine.load(graph)
            return [
                Counter(map(row_key, engine.sparql(query).rows))
                for query in queries
            ]

    with_ids = run_all(True)
    with_strings = run_all(False)
    assert with_ids == with_strings
