"""Metamorphic properties of the engines, driven by the fuzzer's generators.

Three relations that must hold without knowing the expected answer:

- **pattern-reorder invariance** — a BGP is a set of patterns; permuting
  them must not change the solutions (all engines reorder internally, so
  this exercises their join-ordering logic end to end);
- **insertion-order invariance** — loading the same triples in a different
  order must not change any answer (catches iteration-order leaks in the
  partitioning pipelines);
- **cardinality monotonicity** — removing triples can only remove BGP
  solutions, so for DISTINCT-free, unsliced queries the solution count is
  monotone under taking graph subsets.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import replace

import pytest

from repro.baselines import Rya, SparqlGx
from repro.core import ProstEngine
from repro.rdf import Graph
from repro.testing import BruteForceOracle, DifferentialRunner
from repro.testing.differential import row_key

SEEDS = (0, 1, 2, 3)

ENGINE_FACTORIES = {
    "prost-mixed": lambda: ProstEngine(strategy="mixed"),
    "sparqlgx": SparqlGx,
    "rya": Rya,
}


@pytest.fixture(scope="module")
def runner() -> DifferentialRunner:
    return DifferentialRunner(queries_per_graph=6)


def _rows(engine, query):
    return Counter(map(row_key, engine.sparql(query).rows))


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_pattern_reorder_invariance(runner, engine_name, seed):
    graph, queries = runner.generate_case(seed)
    engine = ENGINE_FACTORIES[engine_name]()
    engine.load(graph)
    rng = random.Random(seed)
    for query in queries:
        if len(query.patterns) < 2:
            continue
        shuffled = list(query.patterns)
        rng.shuffle(shuffled)
        permuted = replace(query, patterns=tuple(shuffled))
        assert _rows(engine, permuted) == _rows(engine, query), (
            f"seed={seed}: pattern order changed the answer of {query}"
        )


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_insertion_order_invariance(runner, engine_name, seed):
    graph, queries = runner.generate_case(seed)
    triples = sorted(graph, key=lambda t: (t.subject.n3(), t.predicate.n3(), t.object.n3()))
    random.Random(seed).shuffle(triples)
    reordered = ENGINE_FACTORIES[engine_name]()
    reordered.load(Graph(triples))
    original = ENGINE_FACTORIES[engine_name]()
    original.load(graph)
    for query in queries:
        assert _rows(reordered, query) == _rows(original, query), (
            f"seed={seed}: triple insertion order changed the answer of {query}"
        )


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_cardinality_monotone_under_subset(runner, engine_name, seed):
    graph, queries = runner.generate_case(seed)
    rng = random.Random(seed)
    triples = sorted(graph, key=lambda t: (t.subject.n3(), t.predicate.n3(), t.object.n3()))
    subset = [t for t in triples if rng.random() < 0.6]
    if not subset:
        subset = triples[:1]
    full = ENGINE_FACTORIES[engine_name]()
    full.load(graph)
    smaller = ENGINE_FACTORIES[engine_name]()
    smaller.load(Graph(subset))
    for query in queries:
        if query.distinct:
            continue  # DISTINCT-free only: the property is about bag sizes
        unsliced = replace(query, limit=None, offset=None)
        full_count = len(full.sparql(unsliced).rows)
        subset_count = len(smaller.sparql(unsliced).rows)
        assert subset_count <= full_count, (
            f"seed={seed}: subgraph produced MORE solutions "
            f"({subset_count} > {full_count}) for {unsliced}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_oracle_itself_is_order_invariant(runner, seed):
    """The oracle must satisfy the same metamorphic relations it is used to
    judge — pattern order and triple order must not matter to it either."""
    graph, queries = runner.generate_case(seed)
    rng = random.Random(seed)
    triples = sorted(graph, key=lambda t: (t.subject.n3(), t.predicate.n3(), t.object.n3()))
    rng.shuffle(triples)
    oracle = BruteForceOracle(graph)
    reordered_oracle = BruteForceOracle(Graph(triples))
    for query in queries:
        baseline = Counter(map(row_key, oracle.evaluate(query)))
        assert Counter(map(row_key, reordered_oracle.evaluate(query))) == baseline
        if len(query.patterns) >= 2:
            shuffled = list(query.patterns)
            rng.shuffle(shuffled)
            permuted = replace(query, patterns=tuple(shuffled))
            assert Counter(map(row_key, oracle.evaluate(permuted))) == baseline
