"""Tier-1 governed-chaos suite: budgets + fault plans, results unchanged.

Twenty-five fixed-seed differential cases run every cluster-backed engine
under a seeded fault plan AND a per-query memory budget small enough that
fuzz-scale joins spill or degrade, with a deadline generous enough that no
case times out. The contract: spilling, broadcast degradation, and
mid-query memory-pressure faults may change the *cost* of a query, never
its rows — every result stays multiset-equal to the fault-free,
unbudgeted brute-force oracle.

A final aggregate check asserts the governor actually intervened (spills,
degraded joins, pressure events all nonzero across the run); a budget set
too high would otherwise silently reduce this suite to the plain chaos
suite.

Every case is replayable::

    PYTHONPATH=src python -m repro.cli fuzz --seed <seed> --iterations 1 \
        --chaos-seed 1729 --memory-budget 1024 --timeout 60
"""

from __future__ import annotations

import pytest

from repro.testing import CLUSTER_SYSTEMS, DifferentialRunner, FaultStats

pytestmark = pytest.mark.chaos

CHAOS_SEED = 1729
CASE_SEEDS = tuple(range(25))
QUERIES_PER_GRAPH = 2

#: Small enough that fuzz-scale join builds trip it (see
#: tests/governor/test_mode_parity.py, which proves 512 forces spills on
#: the same corpus); the deadline is slack — timeouts are not under test.
MEMORY_BUDGET_BYTES = 1024
QUERY_TIMEOUT_SEC = 60.0

_runner: list[DifferentialRunner] = []
_totals = FaultStats()
_cases_run = 0


def runner() -> DifferentialRunner:
    if not _runner:
        _runner.append(
            DifferentialRunner(
                systems=CLUSTER_SYSTEMS,
                queries_per_graph=QUERIES_PER_GRAPH,
                chaos_seed=CHAOS_SEED,
                memory_budget_bytes=MEMORY_BUDGET_BYTES,
                query_timeout_sec=QUERY_TIMEOUT_SEC,
            )
        )
    return _runner[0]


@pytest.mark.parametrize("seed", CASE_SEEDS)
def test_results_survive_budget_and_fault_plan(seed: int):
    global _cases_run
    mismatches, stats = runner().run_seed_with_stats(seed)
    _totals.merge(stats)
    _cases_run += 1
    assert not mismatches, "\n\n".join(m.format() for m in mismatches)


def test_the_governor_actually_intervened():
    """Aggregated over all cases: every governance lever moved."""
    assert _cases_run == len(CASE_SEEDS)
    assert _totals.spills > 0
    assert _totals.degraded_joins > 0
    assert _totals.memory_pressure_events > 0
    # The fault plan still fires alongside the budget.
    assert _totals.task_retries > 0
