"""Tier-1 chaos suite: fixed-seed fault plans on every cluster-backed engine.

Fifty differential cases (25 case seeds × 2 chaos seeds, 2 queries each)
run PRoST (mixed and vp), S2RDF, and SPARQLGX under seeded random fault
plans — task failures, shuffle-fetch failures, stragglers with speculation,
and whole-worker losses — and hold every result to multiset equality with
the fault-free brute-force oracle. Recovery must change the cost of a
query, never its rows.

A final aggregate check asserts the plans actually exercised every fault
category: a refactor that silently disconnects the injector fails loudly
here instead of turning the suite into a no-op.

Every case is replayable::

    PYTHONPATH=src python -m repro.cli fuzz --seed <seed> --iterations 1 \
        --chaos-seed <chaos_seed>
"""

from __future__ import annotations

import pytest

from repro.testing import CLUSTER_SYSTEMS, DifferentialRunner, FaultStats

pytestmark = pytest.mark.chaos

#: Two independent chaos base seeds guard against one seed's plan being
#: accidentally fault-free for some engine; 25 case seeds each.
CHAOS_SEEDS = (1729, 9042)
CASE_SEEDS = tuple(range(25))
QUERIES_PER_GRAPH = 2

_runners: dict[int, DifferentialRunner] = {}
_totals = FaultStats()
_cases_run = 0


def runner_for(chaos_seed: int) -> DifferentialRunner:
    if chaos_seed not in _runners:
        _runners[chaos_seed] = DifferentialRunner(
            systems=CLUSTER_SYSTEMS,
            queries_per_graph=QUERIES_PER_GRAPH,
            chaos_seed=chaos_seed,
        )
    return _runners[chaos_seed]


@pytest.mark.parametrize("chaos_seed", CHAOS_SEEDS)
@pytest.mark.parametrize("seed", CASE_SEEDS)
def test_results_survive_fault_plan(seed: int, chaos_seed: int):
    global _cases_run
    mismatches, stats = runner_for(chaos_seed).run_seed_with_stats(seed)
    _totals.merge(stats)
    _cases_run += 1
    assert not mismatches, "\n\n".join(m.format() for m in mismatches)


def test_fault_plans_exercised_every_category():
    """Aggregated over all cases: every fault kind fired and was survived."""
    assert _cases_run == len(CHAOS_SEEDS) * len(CASE_SEEDS)
    assert _totals.task_retries > 0
    assert _totals.fetch_retries > 0
    assert _totals.speculative_tasks > 0
    assert _totals.recomputed_tasks > 0
    assert _totals.worker_losses > 0
