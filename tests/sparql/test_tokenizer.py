"""Tokenizer tests: token kinds, keywords, errors."""

import pytest

from repro.errors import SparqlSyntaxError
from repro.sparql import tokenize


def kinds(query: str) -> list[str]:
    return [token.kind for token in tokenize(query)]


def values(query: str) -> list[str]:
    return [token.value for token in tokenize(query)]


class TestTokens:
    def test_iri_ref(self):
        tokens = tokenize("<http://ex/a>")
        assert tokens[0].kind == "IRIREF"
        assert tokens[0].value == "http://ex/a"

    def test_variables_both_sigils(self):
        tokens = tokenize("?x $y")
        assert [t.value for t in tokens[:2]] == ["x", "y"]
        assert all(t.kind == "VAR" for t in tokens[:2])

    def test_string_with_escapes(self):
        tokens = tokenize('"a\\"b"')
        assert tokens[0].value == 'a"b'

    def test_language_tag(self):
        tokens = tokenize('"hi"@en-US')
        assert tokens[1].kind == "LANGTAG"
        assert tokens[1].value == "en-US"

    def test_numbers(self):
        tokens = tokenize("42 -3 4.5")
        assert [t.value for t in tokens[:3]] == ["42", "-3", "4.5"]
        assert all(t.kind == "NUMBER" for t in tokens[:3])

    def test_prefixed_name(self):
        tokens = tokenize("wsdbm:User0")
        assert tokens[0].kind == "PNAME"
        assert tokens[0].value == "wsdbm:User0"

    def test_keywords_case_insensitive(self):
        assert kinds("select WHERE filter")[:3] == ["KEYWORD"] * 3
        assert values("select")[0] == "SELECT"

    def test_a_shorthand_keyword(self):
        tokens = tokenize("?s a ?o")
        assert tokens[1].kind == "KEYWORD"
        assert tokens[1].value == "A"

    def test_punctuation_multi_char(self):
        tokens = tokenize("&& || != <= >= ^^")
        assert [t.value for t in tokens[:6]] == ["&&", "||", "!=", "<=", ">=", "^^"]

    def test_blank_node(self):
        tokens = tokenize("_:b0")
        assert tokens[0].kind == "BNODE"
        assert tokens[0].value == "b0"

    def test_comments_skipped(self):
        tokens = tokenize("?x # comment here\n?y")
        assert [t.value for t in tokens[:2]] == ["x", "y"]

    def test_eof_sentinel_present(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_bad_character_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("?x @@ ?y")

    def test_bare_identifier_that_is_not_keyword_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("bogusword")
