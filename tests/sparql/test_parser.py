"""Parser tests: grammar coverage, prefixes, filters, modifiers, errors."""

import pytest

from repro.errors import SparqlSyntaxError, UnsupportedSparqlError
from repro.rdf.terms import IRI, Literal, RDF_TYPE
from repro.sparql import Variable, parse_sparql
from repro.sparql.algebra import And, Comparison, Or, Regex


class TestBasicQueries:
    def test_single_pattern(self):
        query = parse_sparql("SELECT ?s WHERE { ?s <http://ex/p> ?o }")
        assert query.variables == (Variable("s"),)
        assert len(query.patterns) == 1
        assert query.patterns[0].predicate == IRI("http://ex/p")

    def test_select_star(self):
        query = parse_sparql("SELECT * WHERE { ?s <http://ex/p> ?o }")
        assert query.is_select_star
        assert query.projection == (Variable("s"), Variable("o"))

    def test_multiple_patterns_dot_separated(self):
        query = parse_sparql(
            "SELECT ?s WHERE { ?s <http://ex/p> ?o . ?o <http://ex/q> ?z . }"
        )
        assert len(query.patterns) == 2

    def test_semicolon_property_list(self):
        query = parse_sparql(
            "SELECT ?s WHERE { ?s <http://ex/p> ?o ; <http://ex/q> ?z }"
        )
        assert len(query.patterns) == 2
        assert query.patterns[0].subject == query.patterns[1].subject

    def test_comma_object_list(self):
        query = parse_sparql(
            "SELECT ?s WHERE { ?s <http://ex/p> <http://ex/a>, <http://ex/b> }"
        )
        assert len(query.patterns) == 2

    def test_a_expands_to_rdf_type(self):
        query = parse_sparql("SELECT ?s WHERE { ?s a <http://ex/C> }")
        assert query.patterns[0].predicate == IRI(RDF_TYPE)

    def test_literal_objects(self):
        query = parse_sparql(
            'SELECT ?s WHERE { ?s <http://ex/p> "x"@en . ?s <http://ex/q> 5 }'
        )
        assert query.patterns[0].object == Literal("x", language="en")
        assert query.patterns[1].object.to_python() == 5

    def test_typed_literal(self):
        query = parse_sparql(
            'SELECT ?s WHERE { ?s <http://ex/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> }'
        )
        assert query.patterns[0].object.datatype.endswith("integer")


class TestPrefixes:
    def test_declared_prefix(self):
        query = parse_sparql(
            "PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p ?o }"
        )
        assert query.patterns[0].predicate == IRI("http://example.org/p")

    def test_default_wsdbm_prefix(self):
        query = parse_sparql("SELECT ?s WHERE { ?s wsdbm:likes ?o }")
        assert "uwaterloo" in query.patterns[0].predicate.value

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s nosuch:p ?o }")

    def test_prefixed_name_in_datatype(self):
        query = parse_sparql(
            'SELECT ?s WHERE { ?s wsdbm:p "5"^^xsd:integer }'
        )
        assert query.patterns[0].object.datatype.endswith("integer")


class TestFilters:
    def test_comparison_filter(self):
        query = parse_sparql(
            "SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER(?o > 5) }"
        )
        assert isinstance(query.filters[0], Comparison)
        assert query.filters[0].op == ">"

    def test_regex_filter(self):
        query = parse_sparql(
            'SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER regex(?o, "abc") }'
        )
        assert isinstance(query.filters[0], Regex)

    def test_regex_with_flags(self):
        query = parse_sparql(
            'SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER regex(?o, "abc", "i") }'
        )
        assert isinstance(query.filters[0], Regex)

    def test_boolean_combinations(self):
        query = parse_sparql(
            "SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER(?o > 1 && ?o < 9 || ?o = 0) }"
        )
        assert isinstance(query.filters[0], Or)
        assert isinstance(query.filters[0].operands[0], And)

    def test_parenthesized_filter(self):
        query = parse_sparql(
            "SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER((?o > 1)) }"
        )
        assert isinstance(query.filters[0], Comparison)

    def test_filter_variable_must_occur(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER(?zzz > 5) }")


class TestModifiers:
    def test_distinct(self):
        assert parse_sparql("SELECT DISTINCT ?s WHERE { ?s <http://ex/p> ?o }").distinct

    def test_limit_offset(self):
        query = parse_sparql(
            "SELECT ?s WHERE { ?s <http://ex/p> ?o } LIMIT 10 OFFSET 5"
        )
        assert query.limit == 10
        assert query.offset == 5

    def test_order_by_plain_and_desc(self):
        query = parse_sparql(
            "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o } ORDER BY ?s DESC(?o)"
        )
        assert query.order_by[0].variable == Variable("s")
        assert not query.order_by[0].descending
        assert query.order_by[1].descending

    def test_order_by_unknown_variable_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s <http://ex/p> ?o } ORDER BY ?zzz")


class TestErrors:
    def test_empty_bgp_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { }")

    def test_projection_not_in_pattern_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?zzz WHERE { ?s <http://ex/p> ?o }")

    def test_filter_inside_union_branch_unsupported(self):
        with pytest.raises(UnsupportedSparqlError):
            parse_sparql(
                "SELECT ?s WHERE { { ?s <http://ex/p> ?o . FILTER(?o > 1) } "
                "UNION { ?s <http://ex/q> ?o } }"
            )

    def test_nested_optional_unsupported(self):
        with pytest.raises(UnsupportedSparqlError):
            parse_sparql(
                "SELECT ?s WHERE { ?s <http://ex/p> ?o . "
                "OPTIONAL { ?s <http://ex/q> ?z . OPTIONAL { ?z <http://ex/r> ?w } } }"
            )

    def test_single_braced_group_unsupported(self):
        with pytest.raises(UnsupportedSparqlError):
            parse_sparql("SELECT ?s WHERE { { ?s <http://ex/p> ?o } }")

    def test_literal_predicate_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql('SELECT ?s WHERE { ?s "p" ?o }')

    def test_missing_where_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s { ?s <http://ex/p> ?o }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s <http://ex/p> ?o } garbage more")


class TestAlgebraHelpers:
    def test_pattern_variables(self):
        query = parse_sparql("SELECT ?s WHERE { ?s <http://ex/p> ?o }")
        assert query.pattern_variables == {Variable("s"), Variable("o")}

    def test_has_literal_object(self):
        query = parse_sparql('SELECT ?s WHERE { ?s <http://ex/p> "x" }')
        assert query.patterns[0].has_literal_object
        assert query.patterns[0].has_constant_object

    def test_iri_object_is_constant_not_literal(self):
        query = parse_sparql("SELECT ?s WHERE { ?s <http://ex/p> <http://ex/o> }")
        assert not query.patterns[0].has_literal_object
        assert query.patterns[0].has_constant_object
