"""Query-shape analysis tests, including the WatDiv basic set's classes."""

import pytest

from repro.sparql import parse_sparql
from repro.sparql.analysis import analyze_bgp, analyze_query


def shape_of(query: str) -> str:
    return analyze_query(parse_sparql(query)).shape


class TestShapes:
    def test_single_pattern_is_linear(self):
        assert shape_of("SELECT ?s WHERE { ?s <http://ex/p> ?o }") == "linear"

    def test_pure_star(self):
        assert shape_of(
            "SELECT ?s WHERE { ?s <http://ex/a> ?x . ?s <http://ex/b> ?y . "
            "?s <http://ex/c> ?z }"
        ) == "star"

    def test_chain_is_linear(self):
        assert shape_of(
            "SELECT ?a WHERE { ?a <http://ex/p> ?b . ?b <http://ex/q> ?c . "
            "?c <http://ex/r> ?d }"
        ) == "linear"

    def test_star_plus_chain_is_snowflake(self):
        assert shape_of(
            "SELECT ?s WHERE { ?s <http://ex/a> ?x . ?s <http://ex/b> ?y . "
            "?y <http://ex/c> ?z }"
        ) == "snowflake"

    def test_two_stars_joined_is_snowflake(self):
        assert shape_of(
            "SELECT ?s WHERE { ?s <http://ex/a> ?x . ?s <http://ex/b> ?m . "
            "?m <http://ex/c> ?y . ?m <http://ex/d> ?z }"
        ) == "snowflake"

    def test_cycle_is_complex(self):
        assert shape_of(
            "SELECT ?a WHERE { ?a <http://ex/p> ?b . ?b <http://ex/q> ?c . "
            "?c <http://ex/r> ?a }"
        ) == "complex"

    def test_disconnected_is_complex(self):
        assert shape_of(
            "SELECT ?a ?c WHERE { ?a <http://ex/p> ?b . ?c <http://ex/q> ?d }"
        ) == "complex"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_bgp([])


class TestAnalysisFacts:
    def test_join_variables(self):
        analysis = analyze_query(
            parse_sparql("SELECT ?a WHERE { ?a <http://ex/p> ?b . ?b <http://ex/q> ?c }")
        )
        assert {v.name for v in analysis.join_variables} == {"b"}

    def test_subject_star_sizes(self):
        analysis = analyze_query(
            parse_sparql(
                "SELECT ?s WHERE { ?s <http://ex/a> ?x . ?s <http://ex/b> ?y . "
                "?y <http://ex/c> ?z }"
            )
        )
        sizes = {v.name: n for v, n in analysis.subject_stars.items()}
        assert sizes == {"s": 2}

    def test_constants_connect_patterns(self):
        analysis = analyze_query(
            parse_sparql(
                "SELECT ?a ?b WHERE { ?a <http://ex/p> <http://ex/x> . "
                "?b <http://ex/q> <http://ex/x> }"
            )
        )
        assert analysis.is_connected


class TestWatDivQueryClasses:
    """The generated basic query set lands in its intended shape classes."""

    @pytest.fixture(scope="class")
    def analyses(self):
        from repro.watdiv import basic_query_set, generate_watdiv

        dataset = generate_watdiv(scale=30, seed=2)
        return {
            q.name: analyze_query(parse_sparql(q.text))
            for q in basic_query_set(dataset)
        }

    def test_star_queries_are_stars_or_near(self, analyses):
        for name in ("S2", "S3", "S5", "S6"):
            assert analyses[name].shape == "star", name

    def test_linear_queries_are_short_and_shallow(self, analyses):
        # WatDiv's L templates are short paths; structurally L3/L4 are tiny
        # 2-pattern subject stars and L1/L2/L5 are star+edge snowflakes.
        for name in ("L1", "L2", "L3", "L4", "L5"):
            analysis = analyses[name]
            assert analysis.num_patterns <= 3, name
            assert analysis.shape in ("linear", "star", "snowflake"), name

    def test_snowflake_queries_have_stars(self, analyses):
        for name in ("F2", "F3", "F5"):
            assert analyses[name].subject_stars, name

    def test_complex_queries_are_dense(self, analyses):
        assert analyses["C2"].num_patterns == 10
        assert len(analyses["C1"].join_variables) >= 2
