"""Parser tests for COUNT aggregates and GROUP BY."""

import pytest

from repro.errors import SparqlSyntaxError
from repro.sparql import Variable, parse_sparql


class TestAggregateParsing:
    def test_count_variable_with_group_by(self):
        query = parse_sparql(
            "SELECT ?g (COUNT(?x) AS ?n) WHERE { ?x <http://ex/p> ?g } GROUP BY ?g"
        )
        assert query.is_aggregate
        aggregate = query.aggregates[0]
        assert aggregate.variable == Variable("x")
        assert aggregate.alias == Variable("n")
        assert not aggregate.distinct
        assert query.group_by == (Variable("g"),)

    def test_count_star(self):
        query = parse_sparql("SELECT (COUNT(*) AS ?n) WHERE { ?x <http://ex/p> ?g }")
        assert query.aggregates[0].variable is None

    def test_count_distinct(self):
        query = parse_sparql(
            "SELECT (COUNT(DISTINCT ?x) AS ?n) WHERE { ?x <http://ex/p> ?g }"
        )
        assert query.aggregates[0].distinct

    def test_projection_appends_alias(self):
        query = parse_sparql(
            "SELECT ?g (COUNT(?x) AS ?n) WHERE { ?x <http://ex/p> ?g } GROUP BY ?g"
        )
        assert query.projection == (Variable("g"), Variable("n"))

    def test_multiple_aggregates(self):
        query = parse_sparql(
            "SELECT (COUNT(?x) AS ?a) (COUNT(DISTINCT ?x) AS ?b) "
            "WHERE { ?x <http://ex/p> ?g }"
        )
        assert len(query.aggregates) == 2

    def test_str_rendering(self):
        query = parse_sparql(
            "SELECT (COUNT(DISTINCT ?x) AS ?n) WHERE { ?x <http://ex/p> ?g }"
        )
        assert str(query.aggregates[0]) == "(COUNT(DISTINCT ?x) AS ?n)"


class TestAggregateValidation:
    def test_plain_variable_requires_group_by(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql(
                "SELECT ?g (COUNT(?x) AS ?n) WHERE { ?x <http://ex/p> ?g }"
            )

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?g WHERE { ?x <http://ex/p> ?g } GROUP BY ?g")

    def test_group_by_unknown_variable_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql(
                "SELECT (COUNT(?x) AS ?n) WHERE { ?x <http://ex/p> ?g } GROUP BY ?zzz"
            )

    def test_alias_clash_with_pattern_variable_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT (COUNT(?x) AS ?g) WHERE { ?x <http://ex/p> ?g }")

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql(
                "SELECT (COUNT(?x) AS ?n) (COUNT(?g) AS ?n) "
                "WHERE { ?x <http://ex/p> ?g }"
            )

    def test_counting_unknown_variable_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT (COUNT(?zzz) AS ?n) WHERE { ?x <http://ex/p> ?g }")

    def test_order_by_alias_allowed(self):
        query = parse_sparql(
            "SELECT ?g (COUNT(?x) AS ?n) WHERE { ?x <http://ex/p> ?g } "
            "GROUP BY ?g ORDER BY DESC(?n)"
        )
        assert query.order_by[0].variable == Variable("n")
