"""Parser tests for the OPTIONAL / UNION extensions."""

import pytest

from repro.errors import SparqlSyntaxError
from repro.sparql import Variable, parse_sparql


class TestOptionalParsing:
    def test_single_optional_group(self):
        query = parse_sparql(
            "SELECT ?s ?z WHERE { ?s <http://ex/p> ?o . "
            "OPTIONAL { ?s <http://ex/q> ?z } }"
        )
        assert len(query.patterns) == 1
        assert len(query.optional_groups) == 1
        assert len(query.optional_groups[0]) == 1
        assert not query.is_union

    def test_multiple_optional_groups_ordered(self):
        query = parse_sparql(
            "SELECT ?s WHERE { ?s <http://ex/p> ?o . "
            "OPTIONAL { ?s <http://ex/q> ?a } OPTIONAL { ?s <http://ex/r> ?b } }"
        )
        assert len(query.optional_groups) == 2
        assert query.optional_groups[0][0].predicate.value == "http://ex/q"
        assert query.optional_groups[1][0].predicate.value == "http://ex/r"

    def test_optional_with_multiple_patterns(self):
        query = parse_sparql(
            "SELECT ?s WHERE { ?s <http://ex/p> ?o . "
            "OPTIONAL { ?s <http://ex/q> ?a . ?a <http://ex/r> ?b } }"
        )
        assert len(query.optional_groups[0]) == 2

    def test_projection_may_use_optional_variables(self):
        query = parse_sparql(
            "SELECT ?z WHERE { ?s <http://ex/p> ?o . "
            "OPTIONAL { ?s <http://ex/q> ?z } }"
        )
        assert query.projection == (Variable("z"),)

    def test_empty_optional_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { ?s <http://ex/p> ?o . OPTIONAL { } }")


class TestUnionParsing:
    def test_two_branches(self):
        query = parse_sparql(
            "SELECT ?s WHERE { { ?s <http://ex/p> ?o } UNION { ?s <http://ex/q> ?o } }"
        )
        assert query.is_union
        assert not query.patterns
        assert len(query.union_branches) == 2

    def test_three_branches(self):
        query = parse_sparql(
            "SELECT ?s WHERE { { ?s <http://ex/p> ?o } UNION "
            "{ ?s <http://ex/q> ?o } UNION { ?s <http://ex/r> ?o } }"
        )
        assert len(query.union_branches) == 3

    def test_branches_may_have_multiple_patterns(self):
        query = parse_sparql(
            "SELECT ?s WHERE { { ?s <http://ex/p> ?o . ?o <http://ex/q> ?z } "
            "UNION { ?s <http://ex/r> ?o } }"
        )
        assert len(query.union_branches[0]) == 2

    def test_all_patterns_collects_everything(self):
        query = parse_sparql(
            "SELECT ?s WHERE { { ?s <http://ex/p> ?o } UNION { ?s <http://ex/q> ?o } }"
        )
        assert len(query.all_patterns()) == 2

    def test_projection_validated_against_all_branches(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql(
                "SELECT ?zzz WHERE { { ?s <http://ex/p> ?o } UNION "
                "{ ?s <http://ex/q> ?o } }"
            )

    def test_empty_branch_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?s WHERE { { ?s <http://ex/p> ?o } UNION { } }")
