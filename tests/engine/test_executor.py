"""Physical execution tests: every operator, join strategies, metrics."""

import dataclasses

import pytest

from repro.columnar import ColumnSchema, TableSchema
from repro.engine import ClusterConfig, EngineSession, SimulatedCluster, col, lit

KV = TableSchema([ColumnSchema("k", "string"), ColumnSchema("v", "string")])


def make_session(**config_overrides) -> EngineSession:
    config = ClusterConfig(num_workers=3, **config_overrides)
    return EngineSession(SimulatedCluster(config))


def session_with_tables() -> EngineSession:
    session = make_session()
    session.register_rows(
        "left", KV, [("a", "1"), ("b", "2"), ("c", "3"), ("a", "9")],
        partition_columns=("k",),
    )
    session.register_rows(
        "right",
        TableSchema([ColumnSchema("k", "string"), ColumnSchema("w", "string")]),
        [("a", "x"), ("b", "y"), ("d", "z")],
        partition_columns=("k",),
    )
    return session


class TestNarrowOperators:
    def test_filter(self):
        session = session_with_tables()
        rows = session.table("left").filter(col("v") > lit("1")).collect()
        assert sorted(rows) == [("a", "9"), ("b", "2"), ("c", "3")]

    def test_project_with_expression(self):
        session = session_with_tables()
        rows = session.table("left").select("k", ("big", col("v") >= lit("2"))).collect()
        assert ("b", True) in rows and ("a", False) in rows

    def test_rename(self):
        session = session_with_tables()
        frame = session.table("left").rename({"k": "key"})
        assert frame.columns == ("key", "v")

    def test_explode_drops_empty_and_null(self):
        session = make_session()
        schema = TableSchema([ColumnSchema("k", "string"), ColumnSchema("xs", "list<string>")])
        session.register_rows("t", schema, [("a", ["1", "2"]), ("b", []), ("c", None)])
        rows = session.table("t").explode("xs", "x").collect()
        assert sorted(rows) == [("a", "1"), ("a", "2")]

    def test_explode_renames_column_and_keeps_key_partitioner(self):
        """Renaming a non-key list column via explode leaves the subject
        hash placement intact (the PT multivalued-predicate path)."""
        session = make_session()
        schema = TableSchema([ColumnSchema("k", "string"), ColumnSchema("xs", "list<string>")])
        session.register_rows(
            "pt_like", schema, [("a", ["1", "2"]), ("b", ["3"])], partition_columns=("k",)
        )
        frame = session.table("pt_like").explode("xs", "x")
        assert frame.columns == ("k", "x")
        data, _ = session.execute(frame.plan, run_optimizer=False)
        assert data.partitioner is not None
        assert data.partitioner.columns == ("k",)
        assert sorted(data.all_rows()) == [("a", "1"), ("a", "2"), ("b", "3")]

    def test_explode_on_key_column_invalidates_partitioner(self):
        """Exploding the partitioning column itself rewrites every key, so
        the placement promise no longer holds."""
        session = make_session()
        schema = TableSchema([ColumnSchema("ks", "list<string>"), ColumnSchema("v", "string")])
        session.register_rows(
            "keyed", schema, [(["a", "b"], "1"), (["c"], "2")], partition_columns=("ks",)
        )
        frame = session.table("keyed").explode("ks", "k")
        data, _ = session.execute(frame.plan, run_optimizer=False)
        assert data.partitioner is None
        assert sorted(data.all_rows()) == [("a", "1"), ("b", "1"), ("c", "2")]

    def test_explode_without_rename_keeps_non_key_partitioner(self):
        session = make_session()
        schema = TableSchema([ColumnSchema("k", "string"), ColumnSchema("xs", "list<string>")])
        session.register_rows(
            "pt_keep", schema, [("a", ["1"])], partition_columns=("k",)
        )
        data, _ = session.execute(
            session.table("pt_keep").explode("xs").plan, run_optimizer=False
        )
        assert data.partitioner is not None and data.partitioner.columns == ("k",)


class TestJoins:
    def test_inner_join(self):
        session = session_with_tables()
        rows = session.table("left").join(session.table("right"), on=["k"]).collect()
        assert sorted(rows) == [("a", "1", "x"), ("a", "9", "x"), ("b", "2", "y")]

    def test_left_join_fills_nulls(self):
        session = session_with_tables()
        rows = session.table("left").join(session.table("right"), on=["k"], how="left").collect()
        assert ("c", "3", None) in rows

    def test_semi_join(self):
        session = session_with_tables()
        rows = session.table("left").join(session.table("right"), on=["k"], how="semi").collect()
        assert sorted(rows) == [("a", "1"), ("a", "9"), ("b", "2")]

    def test_anti_join(self):
        session = session_with_tables()
        rows = session.table("left").join(session.table("right"), on=["k"], how="anti").collect()
        assert rows == [("c", "3")]

    def test_cross_join(self):
        session = session_with_tables()
        left = session.table("left").select(("a", col("k")))
        right = session.table("right").select(("b", col("k")))
        rows = left.join(right, on=(), how="cross").collect()
        assert len(rows) == 4 * 3

    def test_null_keys_never_match(self):
        session = make_session()
        session.register_rows("l", KV, [(None, "1"), ("a", "2")])
        session.register_rows(
            "r", TableSchema([ColumnSchema("k", "string"), ColumnSchema("w", "string")]),
            [(None, "x"), ("a", "y")],
        )
        rows = session.table("l").join(session.table("r"), on=["k"]).collect()
        assert rows == [("a", "2", "y")]

    def test_strategies_agree(self):
        """Broadcast, shuffle, and colocated joins give identical results."""
        base = session_with_tables()
        expected = sorted(base.table("left").join(base.table("right"), on=["k"]).collect())
        for hint in ("broadcast", "shuffle"):
            session = session_with_tables()
            got = session.table("left").join(session.table("right"), on=["k"], hint=hint)
            assert sorted(got.collect()) == expected

    def test_colocated_join_avoids_shuffle(self):
        session = session_with_tables()
        frame = session.table("left").join(
            session.table("right"), on=["k"], hint="shuffle"
        )
        # Both tables are hash-partitioned on k at registration: the engine
        # detects co-location even under a shuffle hint? No — the hint forces
        # a shuffle only when sides are NOT already colocated; colocation is
        # checked first.
        _, report = frame.collect_with_report()
        assert report.metrics.colocated_joins == 1
        assert report.metrics.shuffle_bytes == 0

    def test_broadcast_join_records_broadcast(self):
        session = session_with_tables()
        left = session.table("left").rename({"k": "a"})  # renaming kills partitioner? no: rename keeps
        right = session.table("right").rename({"k": "a", "w": "b"})
        # Force differing partition layouts by filtering one side first.
        frame = left.filter(col("v") != lit("zzz")).join(right, on=["a"], hint="broadcast")
        _, report = frame.collect_with_report()
        assert report.metrics.broadcast_count >= 1


class TestWideOperators:
    def test_distinct(self):
        session = make_session()
        session.register_rows("t", KV, [("a", "1"), ("a", "1"), ("b", "2")])
        assert sorted(session.table("t").distinct().collect()) == [("a", "1"), ("b", "2")]

    def test_sort_and_limit(self):
        session = make_session()
        session.register_rows("t", KV, [("b", "2"), ("a", "1"), ("c", "3")])
        rows = session.table("t").sort("k").limit(2).collect()
        assert rows == [("a", "1"), ("b", "2")]

    def test_sort_descending(self):
        session = make_session()
        session.register_rows("t", KV, [("b", "2"), ("a", "1")])
        rows = session.table("t").sort(("k", True)).collect()
        assert rows == [("b", "2"), ("a", "1")]

    def test_sort_nulls_first(self):
        session = make_session()
        session.register_rows("t", KV, [("b", "2"), (None, "1")])
        rows = session.table("t").sort("k").collect()
        assert rows[0] == (None, "1")

    def test_limit_offset(self):
        session = make_session()
        session.register_rows("t", KV, [("a", "1"), ("b", "2"), ("c", "3")])
        rows = session.table("t").sort("k").limit(1, offset=1).collect()
        assert rows == [("b", "2")]

    def test_union(self):
        session = make_session()
        session.register_rows("t", KV, [("a", "1")])
        session.register_rows("u", KV, [("b", "2")])
        rows = session.table("t").union(session.table("u")).collect()
        assert sorted(rows) == [("a", "1"), ("b", "2")]


class TestMetrics:
    def test_scan_bytes_reflect_column_pruning(self):
        session = make_session()
        wide = TableSchema([ColumnSchema(f"c{i}", "string") for i in range(6)])
        rows = [tuple(f"row{r}col{i}" * 3 for i in range(6)) for r in range(50)]
        session.register_rows("w", wide, rows, persist_path="/w")
        _, full = session.table("w").collect_with_report()
        _, pruned = session.table("w").select("c0").collect_with_report()
        assert pruned.metrics.bytes_scanned < full.metrics.bytes_scanned

    def test_shuffle_join_records_bytes(self):
        session = make_session()
        session.register_rows("l", KV, [(str(i), "x") for i in range(100)])
        session.register_rows(
            "r", TableSchema([ColumnSchema("k", "string"), ColumnSchema("w", "string")]),
            [(str(i), "y") for i in range(100)],
        )
        frame = session.table("l").join(session.table("r"), on=["k"], hint="shuffle")
        _, report = frame.collect_with_report()
        assert report.metrics.shuffle_bytes > 0
        assert report.metrics.shuffle_rows == 200

    def test_cost_breakdown_positive(self):
        session = session_with_tables()
        _, report = session.table("left").collect_with_report()
        assert report.cost.total_sec > 0
        assert report.simulated_sec == report.cost.total_sec

    def test_data_scale_multiplies_cost(self):
        slow = make_session(data_scale=1000.0)
        slow.register_rows("t", KV, [("a", "1")] * 50, persist_path="/t")
        _, scaled = slow.table("t").collect_with_report()
        fast = make_session()
        fast.register_rows("t", KV, [("a", "1")] * 50, persist_path="/t")
        _, unscaled = fast.table("t").collect_with_report()
        assert scaled.cost.scan_sec > unscaled.cost.scan_sec * 100
