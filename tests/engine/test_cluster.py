"""Cost model tests: config validation, metric folding, cost math."""

import pytest

from repro.engine import ClusterConfig, ExecutionMetrics, SimulatedCluster, estimate_cost


class TestClusterConfig:
    def test_defaults_match_paper_setup(self):
        config = ClusterConfig()
        assert config.num_workers == 9
        assert config.default_partitions == 18

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_workers=0)
        with pytest.raises(ValueError):
            ClusterConfig(partitions_per_worker=0)

    @pytest.mark.parametrize(
        "name",
        [
            "network_bytes_per_sec",
            "scan_bytes_per_sec",
            "rows_per_sec",
            "data_scale",
            "broadcast_threshold_bytes",
        ],
    )
    def test_non_positive_rates_rejected(self, name):
        with pytest.raises(ValueError, match=name):
            ClusterConfig(**{name: 0})
        with pytest.raises(ValueError, match=name):
            ClusterConfig(**{name: -1})

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError, match="task_overhead_sec"):
            ClusterConfig(task_overhead_sec=-0.1)
        ClusterConfig(task_overhead_sec=0.0)  # zero overhead is allowed

    def test_fault_tolerance_knobs_validated(self):
        with pytest.raises(ValueError, match="max_task_attempts"):
            ClusterConfig(max_task_attempts=0)
        with pytest.raises(ValueError, match="speculation_multiplier"):
            ClusterConfig(speculation_multiplier=1.0)
        config = ClusterConfig(max_task_attempts=1, speculation_multiplier=1.01)
        assert config.max_task_attempts == 1

    @pytest.mark.parametrize("name", ["memory_budget_bytes", "query_timeout_sec"])
    def test_governance_knobs_validated(self, name):
        with pytest.raises(ValueError, match=name):
            ClusterConfig(**{name: 0})
        with pytest.raises(ValueError, match=name):
            ClusterConfig(**{name: -1})
        assert getattr(ClusterConfig(**{name: 1}), name) == 1
        assert getattr(ClusterConfig(), name) is None  # optional: off by default

    def test_max_concurrent_queries_validated(self):
        with pytest.raises(ValueError, match="max_concurrent_queries"):
            ClusterConfig(max_concurrent_queries=0)
        with pytest.raises(ValueError, match="max_concurrent_queries"):
            ClusterConfig(max_concurrent_queries=True)  # bools are not counts

    def test_spill_dir_validated(self):
        with pytest.raises(ValueError, match="spill_dir"):
            ClusterConfig(spill_dir="")
        with pytest.raises(ValueError, match="spill_dir"):
            ClusterConfig(spill_dir=7)
        assert ClusterConfig(spill_dir="/tmp/spills").spill_dir == "/tmp/spills"

    def test_every_field_has_a_validation_rule(self, monkeypatch):
        # The allowlist regression: a field added without a declared rule
        # must be refused loudly, not silently skipped.
        from repro.engine import cluster as cluster_module

        monkeypatch.delitem(cluster_module._CONFIG_FIELD_RULES, "data_scale")
        with pytest.raises(ValueError, match="no validation rule"):
            ClusterConfig()


class TestMetrics:
    def test_record_stage(self):
        metrics = ExecutionMetrics()
        metrics.record_stage(tasks=4, note="Scan t")
        assert metrics.stages == 1
        assert metrics.tasks == 4
        assert metrics.operator_log == ["Scan t"]

    def test_merge_folds_counters(self):
        a = ExecutionMetrics(bytes_scanned=10, shuffle_bytes=5, stages=1)
        b = ExecutionMetrics(bytes_scanned=1, broadcast_count=2, narrow_rows_processed=7)
        a.merge(b)
        assert a.bytes_scanned == 11
        assert a.shuffle_bytes == 5
        assert a.broadcast_count == 2
        assert a.narrow_rows_processed == 7


class TestCostModel:
    def test_zero_metrics_costs_nothing(self):
        cost = estimate_cost(ExecutionMetrics(), ClusterConfig())
        assert cost.total_sec == 0.0

    def test_shuffle_bytes_cross_network_twice(self):
        config = ClusterConfig(num_workers=1, network_bytes_per_sec=100.0)
        cost = estimate_cost(ExecutionMetrics(shuffle_bytes=100), config)
        assert cost.shuffle_sec == pytest.approx(2.0)

    def test_scan_parallelizes_over_workers(self):
        one = estimate_cost(
            ExecutionMetrics(bytes_scanned=1000), ClusterConfig(num_workers=1)
        )
        nine = estimate_cost(
            ExecutionMetrics(bytes_scanned=1000), ClusterConfig(num_workers=9)
        )
        assert one.scan_sec == pytest.approx(9 * nine.scan_sec)

    def test_stage_overhead_is_serial(self):
        config = ClusterConfig(task_overhead_sec=0.1)
        cost = estimate_cost(ExecutionMetrics(stages=5), config)
        assert cost.overhead_sec == pytest.approx(0.5)

    def test_data_scale_multiplies_data_costs_not_overhead(self):
        metrics = ExecutionMetrics(bytes_scanned=1000, stages=2)
        base = estimate_cost(metrics, ClusterConfig(data_scale=1.0))
        scaled = estimate_cost(metrics, ClusterConfig(data_scale=100.0))
        assert scaled.scan_sec == pytest.approx(100 * base.scan_sec)
        assert scaled.overhead_sec == base.overhead_sec

    def test_narrow_rows_cost_less_than_wide_rows(self):
        config = ClusterConfig()
        wide = estimate_cost(ExecutionMetrics(rows_processed=9000), config)
        narrow = estimate_cost(ExecutionMetrics(narrow_rows_processed=9000), config)
        assert narrow.cpu_sec < wide.cpu_sec


class TestSimulatedCluster:
    def test_finish_query_accumulates_session_metrics(self):
        cluster = SimulatedCluster()
        metrics = ExecutionMetrics(bytes_scanned=10)
        cluster.finish_query(metrics)
        cluster.finish_query(ExecutionMetrics(bytes_scanned=5))
        assert cluster.session_metrics.bytes_scanned == 15
