"""Logical plan tests: schema derivation and validation."""

import pytest

from repro.columnar import ColumnSchema, TableSchema
from repro.engine import col, lit
from repro.engine.logical import (
    Distinct,
    Explode,
    Filter,
    InMemoryRelation,
    Join,
    Limit,
    Project,
    Sort,
    TableScan,
    Union,
)
from repro.errors import PlanError

SCHEMA = TableSchema(
    [
        ColumnSchema("s", "string"),
        ColumnSchema("o", "string"),
        ColumnSchema("tags", "list<string>"),
    ]
)


def scan() -> TableScan:
    return TableScan("t", SCHEMA)


class TestScanAndLocal:
    def test_scan_schema(self):
        assert scan().schema == SCHEMA

    def test_pruned_scan_schema(self):
        plan = TableScan("t", SCHEMA, columns=("o",))
        assert plan.schema.names == ("o",)

    def test_local_relation(self):
        relation = InMemoryRelation(SCHEMA, (("a", "b", None),))
        assert relation.schema == SCHEMA
        assert relation.children == ()


class TestFilterProject:
    def test_filter_keeps_schema(self):
        plan = Filter(scan(), col("s") == lit("a"))
        assert plan.schema == SCHEMA

    def test_filter_unknown_column_rejected(self):
        with pytest.raises(PlanError):
            Filter(scan(), col("zzz") == lit("a"))

    def test_project_renames_and_types(self):
        plan = Project(scan(), (("subject", col("s")), ("marker", lit(1))))
        assert plan.schema.names == ("subject", "marker")
        assert plan.schema.column("subject").type == "string"
        assert plan.schema.column("marker").type == "int"

    def test_project_duplicate_outputs_rejected(self):
        with pytest.raises(PlanError):
            Project(scan(), (("a", col("s")), ("a", col("o"))))

    def test_project_unknown_reference_rejected(self):
        with pytest.raises(PlanError):
            Project(scan(), (("a", col("zzz")),))

    def test_rename_only_detection(self):
        assert Project(scan(), (("x", col("s")),)).is_rename_only
        assert not Project(scan(), (("x", lit(1)),)).is_rename_only


class TestJoin:
    def test_join_schema_merges_without_duplicate_keys(self):
        left = Project(scan(), (("k", col("s")), ("a", col("o"))))
        right = Project(scan(), (("k", col("s")), ("b", col("o"))))
        join = Join(left, right, on=("k",))
        assert join.schema.names == ("k", "a", "b")

    def test_semi_join_keeps_left_schema(self):
        left = Project(scan(), (("k", col("s")), ("a", col("o"))))
        right = Project(scan(), (("k", col("s")),))
        join = Join(left, right, on=("k",), how="semi")
        assert join.schema.names == ("k", "a")

    def test_missing_key_rejected(self):
        left = Project(scan(), (("a", col("s")),))
        right = Project(scan(), (("b", col("s")),))
        with pytest.raises(PlanError):
            Join(left, right, on=("a",))

    def test_empty_keys_rejected_for_inner(self):
        with pytest.raises(PlanError):
            Join(scan(), scan(), on=())

    def test_cross_join_requires_disjoint_columns(self):
        with pytest.raises(PlanError):
            Join(scan(), scan(), on=(), how="cross")
        left = Project(scan(), (("a", col("s")),))
        right = Project(scan(), (("b", col("s")),))
        cross = Join(left, right, on=(), how="cross")
        assert cross.schema.names == ("a", "b")

    def test_unknown_how_and_hint_rejected(self):
        with pytest.raises(PlanError):
            Join(scan(), scan(), on=("s",), how="full")
        with pytest.raises(PlanError):
            Join(scan(), scan(), on=("s",), hint="sort-merge")


class TestOtherOperators:
    def test_explode_rewrites_column_type(self):
        plan = Explode(scan(), "tags", output_name="tag")
        assert plan.schema.column("tag").type == "string"
        assert not plan.schema.has_column("tags")

    def test_explode_requires_list_column(self):
        with pytest.raises(PlanError):
            Explode(scan(), "s")

    def test_distinct_and_limit_keep_schema(self):
        assert Distinct(scan()).schema == SCHEMA
        assert Limit(scan(), 5).schema == SCHEMA

    def test_limit_validation(self):
        with pytest.raises(PlanError):
            Limit(scan(), -1)
        with pytest.raises(PlanError):
            Limit(scan(), 1, offset=-2)

    def test_sort_key_validation(self):
        Sort(scan(), (("s", False),))
        with pytest.raises(PlanError):
            Sort(scan(), (("zzz", False),))

    def test_union_schema_checks(self):
        with pytest.raises(PlanError):
            Union((scan(),))
        other = Project(scan(), (("x", col("s")),))
        with pytest.raises(PlanError):
            Union((scan(), other))
        assert Union((scan(), scan())).schema == SCHEMA

    def test_describe_renders_tree(self):
        plan = Filter(scan(), col("s") == lit("a"))
        text = plan.describe()
        assert "Filter" in text and "TableScan" in text
