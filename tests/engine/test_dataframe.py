"""DataFrame API tests: laziness, transformations, error handling."""

import pytest

from repro.columnar import ColumnSchema, TableSchema
from repro.engine import ClusterConfig, EngineSession, SimulatedCluster, col, lit
from repro.errors import PlanError

KV = TableSchema([ColumnSchema("s", "string"), ColumnSchema("o", "string")])


def make_session() -> EngineSession:
    session = EngineSession(SimulatedCluster(ClusterConfig(num_workers=2)))
    session.register_rows("t", KV, [("a", "1"), ("b", "2")])
    return session


class TestBasics:
    def test_columns_property(self):
        session = make_session()
        assert session.table("t").columns == ("s", "o")

    def test_transformations_are_lazy(self):
        session = make_session()
        frame = session.table("t").filter(col("s") == lit("a"))
        assert session.last_report is None  # nothing executed yet
        frame.collect()
        assert session.last_report is not None

    def test_count(self):
        assert make_session().table("t").count() == 2

    def test_to_dicts(self):
        session = make_session()
        dicts = session.table("t").to_dicts()
        assert {"s": "a", "o": "1"} in dicts

    def test_select_requires_columns(self):
        with pytest.raises(PlanError):
            make_session().table("t").select()

    def test_explain_renders(self):
        text = make_session().table("t").select("s").explain()
        assert "TableScan" in text

    def test_create_dataframe_from_rows(self):
        session = make_session()
        frame = session.create_dataframe(KV, [("x", "y")])
        assert frame.collect() == [("x", "y")]

    def test_repr(self):
        assert "DataFrame" in repr(make_session().table("t"))


class TestCrossSessionSafety:
    def test_join_across_sessions_rejected(self):
        a = make_session()
        b = make_session()
        with pytest.raises(PlanError):
            a.table("t").join(b.table("t"), on=["s"])

    def test_union_across_sessions_rejected(self):
        a = make_session()
        b = make_session()
        with pytest.raises(PlanError):
            a.table("t").union(b.table("t"))


class TestChaining:
    def test_filter_select_chain(self):
        session = make_session()
        rows = (
            session.table("t")
            .filter(col("o") == lit("2"))
            .select(("subject", col("s")))
            .collect()
        )
        assert rows == [("b",)]

    def test_rename_then_join_on_new_name(self):
        session = make_session()
        session.register_rows(
            "u", TableSchema([ColumnSchema("k", "string"), ColumnSchema("w", "string")]),
            [("a", "x")],
        )
        left = session.table("t").rename({"s": "k"})
        rows = left.join(session.table("u"), on=["k"]).collect()
        assert rows == [("a", "1", "x")]

    def test_collect_with_report_returns_both(self):
        session = make_session()
        rows, report = session.table("t").collect_with_report()
        assert len(rows) == 2
        assert report.metrics.rows_output == 2
        assert "TableScan" in report.optimized_plan
