"""Catalog tests: registration, lookup, scan-byte accounting."""

import pytest

from repro.columnar import ColumnSchema, TableSchema
from repro.engine import ClusterConfig, EngineSession, SimulatedCluster
from repro.engine.catalog import Catalog, StoredTable
from repro.engine.data import PartitionedData
from repro.errors import CatalogError

KV = TableSchema([ColumnSchema("s", "string"), ColumnSchema("o", "string")])


def stored(name: str = "t") -> StoredTable:
    return StoredTable(name=name, data=PartitionedData(KV, [[("a", "b")]]))


class TestCatalog:
    def test_register_and_get(self):
        catalog = Catalog()
        table = stored()
        catalog.register(table)
        assert catalog.get("t") is table
        assert catalog.has("t")
        assert catalog.names() == ["t"]

    def test_duplicate_rejected_unless_replace(self):
        catalog = Catalog()
        catalog.register(stored())
        with pytest.raises(CatalogError):
            catalog.register(stored())
        catalog.register(stored(), replace=True)

    def test_unknown_lookup_rejected(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")

    def test_drop(self):
        catalog = Catalog()
        catalog.register(stored())
        catalog.drop("t")
        assert not catalog.has("t")
        with pytest.raises(CatalogError):
            catalog.drop("t")


class TestScanBytes:
    def test_persisted_table_uses_chunk_sizes(self):
        session = EngineSession(SimulatedCluster(ClusterConfig(num_workers=2)))
        rows = [("subject" * 5, "object" * 5)] * 100
        table = session.register_rows("t", KV, rows, persist_path="/t")
        full = table.scan_bytes()
        pruned = table.scan_bytes(columns=("s",))
        assert 0 < pruned < full

    def test_unpersisted_table_estimates(self):
        table = stored()
        assert table.scan_bytes() > 0
        assert table.scan_bytes(columns=("s",)) <= table.scan_bytes()

    def test_total_stored_bytes_sums_persisted_only(self):
        session = EngineSession(SimulatedCluster(ClusterConfig(num_workers=2)))
        session.register_rows("a", KV, [("x", "y")], persist_path="/a")
        session.register_rows("b", KV, [("x", "y")])
        total = session.catalog.total_stored_bytes()
        assert total == session.catalog.get("a").file_stats.total_bytes
