"""Fault injection and recovery tests: plans, retries, lineage, speculation."""

import pytest

from repro.columnar import ColumnSchema, TableSchema
from repro.engine import (
    ClusterConfig,
    EngineSession,
    FaultPlan,
    SimulatedCluster,
    StragglerSpec,
    TaskFault,
    WorkerLoss,
    estimate_cost,
)
from repro.engine.cluster import ExecutionMetrics
from repro.engine.faults import (
    RETRY_BACKOFF_BASE_SEC,
    RETRY_BACKOFF_CAP_SEC,
    retry_backoff_sec,
)
from repro.errors import (
    ExecutionError,
    FaultToleranceExhaustedError,
    TaskFailedError,
)

KV = TableSchema([ColumnSchema("s", "string"), ColumnSchema("o", "string")])
VK = TableSchema([ColumnSchema("s", "string"), ColumnSchema("v", "string")])

LEFT_ROWS = [(f"s{i}", f"o{i % 7}") for i in range(40)]
RIGHT_ROWS = [(f"s{i}", f"v{i % 5}") for i in range(40)]


def make_session(fault_plan=None, **config_overrides) -> EngineSession:
    # A 1-byte broadcast threshold forces shuffle joins even on these tiny
    # tables, so fault plans have real shuffle lineage to play against.
    config_overrides.setdefault("broadcast_threshold_bytes", 1)
    config = ClusterConfig(num_workers=3, **config_overrides)
    session = EngineSession(SimulatedCluster(config, fault_plan=fault_plan))
    session.register_rows("left", KV, LEFT_ROWS)
    session.register_rows("right", VK, RIGHT_ROWS)
    return session


def run_join(session: EngineSession):
    frame = session.table("left").join(session.table("right"), on=["s"], how="inner")
    rows = frame.collect()
    return rows, session.last_report


@pytest.fixture(scope="module")
def profile():
    """Per-stage lineage records of the join query (via a no-op fault plan)."""
    inert = FaultPlan(stragglers=(StragglerSpec(stage=10**9, task=0, slowdown=2.0),))
    _, report = run_join(make_session(fault_plan=inert))
    return report.metrics.fault_injector._stage_records


class TestFaultPlan:
    def test_empty_plan_injects_nothing(self):
        plan = FaultPlan.none()
        assert plan.is_empty
        assert plan.task_fault(0, 0) is None
        assert plan.straggler_slowdown(0, 0) is None
        assert plan.worker_lost_at(0, 9) is None

    def test_rate_draws_are_deterministic(self):
        a = FaultPlan.from_rates(seed=7)
        b = FaultPlan.from_rates(seed=7)
        coords = [(stage, task) for stage in range(30) for task in range(6)]
        assert [a.task_fault(s, t) for s, t in coords] == [
            b.task_fault(s, t) for s, t in coords
        ]
        assert [a.straggler_slowdown(s, t) for s, t in coords] == [
            b.straggler_slowdown(s, t) for s, t in coords
        ]
        assert [a.worker_lost_at(s, 9) for s in range(30)] == [
            b.worker_lost_at(s, 9) for s in range(30)
        ]

    def test_rate_draws_are_order_independent(self):
        plan = FaultPlan.from_rates(seed=3)
        forward = [plan.task_fault(s, t) for s in range(10) for t in range(4)]
        backward = [
            plan.task_fault(s, t)
            for s in reversed(range(10))
            for t in reversed(range(4))
        ]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        coords = [(stage, task) for stage in range(40) for task in range(6)]
        a = [FaultPlan.from_rates(seed=1).task_fault(s, t) for s, t in coords]
        b = [FaultPlan.from_rates(seed=2).task_fault(s, t) for s, t in coords]
        assert a != b

    def test_explicit_faults_win_over_rates(self):
        fault = TaskFault(stage=0, task=0, failures=1, kind="task")
        plan = FaultPlan(seed=5, task_faults=(fault,))
        assert plan.task_fault(0, 0) is fault

    def test_from_rates_plans_stay_recoverable(self):
        plan = FaultPlan.from_rates(seed=11)
        for stage in range(50):
            for task in range(8):
                fault = plan.task_fault(stage, task)
                if fault is not None:
                    assert fault.failures < ClusterConfig().max_task_attempts

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=0, task_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(max_failures=0)
        with pytest.raises(ValueError):
            FaultPlan(slowdown_range=(0.5, 2.0))


class TestBackoff:
    def test_backoff_doubles_then_caps(self):
        assert retry_backoff_sec(1) == pytest.approx(RETRY_BACKOFF_BASE_SEC)
        assert retry_backoff_sec(2) == pytest.approx(3 * RETRY_BACKOFF_BASE_SEC)
        many = retry_backoff_sec(50)
        assert many < 50 * RETRY_BACKOFF_CAP_SEC + 1
        # Far attempts each contribute exactly the cap.
        assert retry_backoff_sec(11) - retry_backoff_sec(10) == pytest.approx(
            RETRY_BACKOFF_CAP_SEC
        )


class TestTaskRetry:
    def test_results_identical_under_faults(self):
        baseline_rows, baseline_report = run_join(make_session())
        plan = FaultPlan(
            seed=None,
            task_faults=tuple(
                TaskFault(stage=s, task=0, failures=2) for s in range(10)
            ),
        )
        faulted_rows, faulted_report = run_join(make_session(fault_plan=plan))
        assert sorted(faulted_rows) == sorted(baseline_rows)
        # Main (fault-free) work counters are untouched by injection.
        assert (
            faulted_report.metrics.shuffle_bytes
            == baseline_report.metrics.shuffle_bytes
        )
        assert (
            faulted_report.metrics.rows_processed
            == baseline_report.metrics.rows_processed
        )

    def test_retries_counted_and_charged(self):
        plan = FaultPlan(
            task_faults=(TaskFault(stage=0, task=0, failures=2),)
        )
        _, report = run_join(make_session(fault_plan=plan))
        metrics = report.metrics
        assert metrics.task_retries == 2
        assert metrics.retry_waves >= 2
        assert metrics.retry_backoff_sec == pytest.approx(retry_backoff_sec(2))
        assert report.cost.recovery_sec > 0
        assert report.cost.total_sec > 0

    def test_recovery_makes_queries_slower_not_wrong(self):
        _, clean = run_join(make_session())
        # task_failure_rate=1.0 guarantees every task fails at least once.
        chaos_plan = FaultPlan.from_rates(seed=17, task_failure_rate=1.0)
        _, chaotic = run_join(make_session(fault_plan=chaos_plan))
        assert chaotic.cost.total_sec > clean.cost.total_sec
        assert chaotic.cost.recovery_sec > 0
        assert clean.cost.recovery_sec == 0

    def test_exhaustion_raises_typed_error(self):
        plan = FaultPlan(
            task_faults=(TaskFault(stage=0, task=0, failures=4),)
        )
        session = make_session(fault_plan=plan, max_task_attempts=4)
        with pytest.raises(FaultToleranceExhaustedError) as excinfo:
            run_join(session)
        # The exception chain carries the last failed attempt, and the
        # typed error is part of the ExecutionError family.
        assert isinstance(excinfo.value.__cause__, TaskFailedError)
        assert isinstance(excinfo.value, ExecutionError)

    def test_failures_below_threshold_recover(self):
        plan = FaultPlan(
            task_faults=(TaskFault(stage=0, task=0, failures=3),)
        )
        rows, report = run_join(make_session(fault_plan=plan, max_task_attempts=4))
        assert rows
        assert report.metrics.task_retries == 3


class TestFetchRetry:
    def test_fetch_failure_recomputes_map_output(self):
        # Two chained shuffle joins: the second join's fetch failure must
        # recompute the first join's map output via lineage. Inject one
        # fetch fault per stage; only post-shuffle stages recompute.
        plan = FaultPlan(
            task_faults=tuple(
                TaskFault(stage=s, task=0, failures=1, kind="fetch")
                for s in range(20)
            ),
        )
        session = make_session(fault_plan=plan)
        extra = TableSchema([ColumnSchema("s", "string"), ColumnSchema("w", "string")])
        session.register_rows("extra", extra, [(f"s{i}", f"w{i}") for i in range(40)])
        frame = (
            session.table("left")
            .join(session.table("right"), on=["s"], how="inner")
            .join(session.table("extra"), on=["s"], how="inner")
        )
        frame.collect()
        metrics = session.last_report.metrics
        assert metrics.fetch_retries > 0
        assert metrics.recomputed_tasks > 0
        assert metrics.retry_backoff_sec > 0

    def test_fetch_failure_without_upstream_recharges_itself(self, profile):
        # A fetch fault before any shuffle producer still retries the task;
        # there is just no map output to regenerate.
        plan = FaultPlan(
            task_faults=(TaskFault(stage=0, task=0, failures=1, kind="fetch"),),
        )
        _, report = run_join(make_session(fault_plan=plan))
        metrics = report.metrics
        assert metrics.fetch_retries == 1
        assert metrics.recomputed_tasks == 0


class TestWorkerLoss:
    def test_worker_loss_recomputes_upstream_shuffle_partitions(self, profile):
        # Losing a worker at the last stage kills its share of every shuffle
        # output produced so far; lineage recompute regenerates them.
        plan = FaultPlan(
            worker_losses=(WorkerLoss(stage=len(profile) - 1, worker=1),)
        )
        rows, report = run_join(make_session(fault_plan=plan))
        baseline_rows, _ = run_join(make_session())
        assert sorted(rows) == sorted(baseline_rows)
        metrics = report.metrics
        assert metrics.worker_losses == 1
        assert metrics.recomputed_tasks > 0
        assert metrics.recovery_shuffle_bytes > 0

    def test_same_worker_only_dies_once(self, profile):
        last = len(profile) - 1
        plan = FaultPlan(
            worker_losses=tuple(WorkerLoss(stage=s, worker=1) for s in range(last + 1))
        )
        _, report = run_join(make_session(fault_plan=plan))
        assert report.metrics.worker_losses == 1

    def test_two_distinct_workers_can_die(self):
        plan = FaultPlan(
            worker_losses=(WorkerLoss(stage=0, worker=0), WorkerLoss(stage=1, worker=1)),
        )
        _, report = run_join(make_session(fault_plan=plan))
        assert report.metrics.worker_losses == 2


@pytest.fixture(scope="module")
def busy_stage(profile):
    """Index of a stage with nonzero serial work (stragglers need task time)."""
    return max(
        range(len(profile)),
        key=lambda i: profile[i].rows_processed + profile[i].shuffle_bytes,
    )


class TestSpeculation:
    def test_slow_straggler_launches_speculative_duplicate(self, busy_stage):
        plan = FaultPlan(stragglers=(StragglerSpec(stage=busy_stage, task=0, slowdown=5.0),))
        _, report = run_join(make_session(fault_plan=plan))
        metrics = report.metrics
        assert metrics.speculative_tasks == 1
        assert metrics.straggler_extra_sec >= 0

    def test_mild_straggler_just_drags(self, busy_stage):
        plan = FaultPlan(stragglers=(StragglerSpec(stage=busy_stage, task=0, slowdown=1.2),))
        _, report = run_join(
            make_session(fault_plan=plan, speculation_multiplier=1.5)
        )
        metrics = report.metrics
        assert metrics.speculative_tasks == 0
        assert metrics.straggler_extra_sec > 0

    def test_speculation_threshold_is_configurable(self, busy_stage):
        plan = FaultPlan(stragglers=(StragglerSpec(stage=busy_stage, task=0, slowdown=3.0),))
        _, eager = run_join(
            make_session(fault_plan=plan, speculation_multiplier=2.0)
        )
        _, lazy = run_join(
            make_session(fault_plan=plan, speculation_multiplier=4.0)
        )
        assert eager.metrics.speculative_tasks == 1
        assert lazy.metrics.speculative_tasks == 0


class TestMetricsPlumbing:
    def test_merge_folds_recovery_counters(self):
        a = ExecutionMetrics(task_retries=1, recovery_shuffle_bytes=10)
        b = ExecutionMetrics(
            task_retries=2,
            fetch_retries=3,
            speculative_tasks=1,
            recomputed_tasks=4,
            worker_losses=1,
            retry_waves=5,
            retry_backoff_sec=0.5,
            straggler_extra_sec=0.25,
            recovery_bytes_scanned=100,
            recovery_rows_processed=200,
            recovery_shuffle_bytes=30,
            fault_events=["x"],
        )
        a.merge(b)
        assert a.task_retries == 3
        assert a.fetch_retries == 3
        assert a.speculative_tasks == 1
        assert a.recomputed_tasks == 4
        assert a.worker_losses == 1
        assert a.retry_waves == 5
        assert a.retry_backoff_sec == pytest.approx(0.5)
        assert a.straggler_extra_sec == pytest.approx(0.25)
        assert a.recovery_bytes_scanned == 100
        assert a.recovery_rows_processed == 200
        assert a.recovery_shuffle_bytes == 40
        assert a.fault_events == ["x"]
        assert a.recovered_faults == 3 + 3 + 1 + 1

    def test_estimate_cost_charges_recovery(self):
        config = ClusterConfig(num_workers=1, task_overhead_sec=0.05)
        metrics = ExecutionMetrics(
            recovery_bytes_scanned=int(config.scan_bytes_per_sec),
            retry_backoff_sec=1.0,
            straggler_extra_sec=0.5,
            retry_waves=2,
        )
        cost = estimate_cost(metrics, config)
        assert cost.recovery_sec == pytest.approx(1.0 + 1.0 + 0.5 + 0.1)
        assert cost.total_sec == pytest.approx(cost.recovery_sec)

    def test_fault_events_logged(self):
        plan = FaultPlan(
            task_faults=(TaskFault(stage=0, task=0, failures=1),),
            stragglers=(StragglerSpec(stage=1, task=0, slowdown=9.0),),
        )
        _, report = run_join(make_session(fault_plan=plan))
        text = "\n".join(report.metrics.fault_events)
        assert "task-failure" in text
        assert "straggler" in text

    def test_session_summary_mentions_recovery(self):
        plan = FaultPlan(task_faults=(TaskFault(stage=0, task=0, failures=1),))
        _, report = run_join(make_session(fault_plan=plan))
        assert "recovered" in report.summary()
        _, clean = run_join(make_session())
        assert "recovered" not in clean.summary()


class TestClusterWiring:
    def test_fault_seed_in_config_builds_plan(self):
        cluster = SimulatedCluster(ClusterConfig(fault_seed=9))
        assert cluster.fault_plan is not None
        assert not cluster.fault_plan.is_empty
        metrics = cluster.new_query_metrics()
        assert metrics.fault_injector is not None

    def test_no_fault_seed_means_no_injector(self):
        cluster = SimulatedCluster()
        assert cluster.fault_plan is None
        assert cluster.new_query_metrics().fault_injector is None

    def test_chaos_seed_is_deterministic_end_to_end(self):
        first_rows, first = run_join(make_session(fault_seed=23))
        second_rows, second = run_join(make_session(fault_seed=23))
        assert first_rows == second_rows
        assert first.metrics.task_retries == second.metrics.task_retries
        assert first.cost.recovery_sec == pytest.approx(second.cost.recovery_sec)
