"""Optimizer tests: pushdown placement, pruning, and semantic preservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import ColumnSchema, TableSchema
from repro.engine import (
    ClusterConfig,
    EngineSession,
    Filter,
    Join,
    Limit,
    Project,
    SimulatedCluster,
    TableScan,
    col,
    lit,
    optimize,
    split_conjuncts,
)
from repro.engine.logical import Explode
from repro.engine.optimizer import rewrite_columns

KV = TableSchema([ColumnSchema("s", "string"), ColumnSchema("o", "string")])


def make_session() -> EngineSession:
    return EngineSession(SimulatedCluster(ClusterConfig(num_workers=2)))


def plan_types(plan) -> list[str]:
    names = [type(plan).__name__]
    for child in plan.children:
        names.extend(plan_types(child))
    return names


class TestSplitConjuncts:
    def test_flat_expression_passes_through(self):
        expr = col("s") == lit("a")
        assert split_conjuncts(expr) == [expr]

    def test_nested_ands_flatten(self):
        expr = (col("s") == lit("a")) & (col("o") == lit("b")) & (col("s") != lit("c"))
        assert len(split_conjuncts(expr)) == 3

    def test_or_not_split(self):
        expr = (col("s") == lit("a")) | (col("o") == lit("b"))
        assert split_conjuncts(expr) == [expr]


class TestRewriteColumns:
    def test_rename_applies(self):
        expr = rewrite_columns(col("x") == lit(1), {"x": "s"})
        assert expr.references() == {"s"}

    def test_unmapped_reference_returns_none(self):
        assert rewrite_columns(col("x") == col("y"), {"x": "s"}) is None

    def test_complex_expression_rewritten(self):
        expr = (col("x") > lit(1)) & col("x").is_not_null() & col("x").rlike("a")
        rewritten = rewrite_columns(expr, {"x": "s"})
        assert rewritten.references() == {"s"}


class TestFilterPushdown:
    def test_filter_sinks_below_rename_project(self):
        scan = TableScan("t", KV)
        plan = Filter(
            Project(scan, (("x", col("s")), ("y", col("o")))),
            col("x") == lit("a"),
        )
        optimized = optimize(plan)
        types = plan_types(optimized)
        # Filter must now sit under the project, directly on the scan.
        assert types.index("Project") < types.index("Filter")

    def test_filter_splits_across_join_sides(self):
        left = Project(TableScan("t", KV), (("a", col("s")), ("k", col("o"))))
        right = Project(TableScan("u", KV), (("b", col("s")), ("k", col("o"))))
        plan = Filter(
            Join(left, right, on=("k",)),
            (col("a") == lit("1")) & (col("b") == lit("2")),
        )
        optimized = optimize(plan)
        assert isinstance(optimized, Join)  # no filter left on top
        left_types = plan_types(optimized.left)
        right_types = plan_types(optimized.right)
        assert "Filter" in left_types and "Filter" in right_types

    def test_cross_join_condition_stays_on_top(self):
        left = Project(TableScan("t", KV), (("a", col("s")),))
        right = Project(TableScan("u", KV), (("b", col("s")),))
        plan = Filter(Join(left, right, on=(), how="cross"), col("a") == col("b"))
        optimized = optimize(plan)
        assert isinstance(optimized, Filter)

    def test_filter_not_pushed_below_limit(self):
        plan = Filter(Limit(TableScan("t", KV), 1), col("s") == lit("a"))
        optimized = optimize(plan)
        assert isinstance(optimized, Filter)
        assert isinstance(optimized.child, Limit)

    def test_filter_on_exploded_column_stays_above_explode(self):
        schema = TableSchema([ColumnSchema("s", "string"), ColumnSchema("xs", "list<string>")])
        plan = Filter(
            Explode(TableScan("t", schema), "xs", "x"),
            col("x") == lit("a"),
        )
        optimized = optimize(plan)
        assert isinstance(optimized, Filter)
        assert isinstance(optimized.child, Explode)

    def test_filter_on_other_column_passes_explode(self):
        schema = TableSchema([ColumnSchema("s", "string"), ColumnSchema("xs", "list<string>")])
        plan = Filter(
            Explode(TableScan("t", schema), "xs", "x"),
            col("s") == lit("a"),
        )
        optimized = optimize(plan)
        assert isinstance(optimized, Explode)


class TestColumnPruning:
    def test_scan_pruned_to_projected_columns(self):
        plan = Project(TableScan("t", KV), (("x", col("s")),))
        optimized = optimize(plan)
        scan = optimized.children[0]
        assert isinstance(scan, TableScan)
        assert scan.columns == ("s",)

    def test_join_keys_kept_during_pruning(self):
        left = Project(TableScan("t", KV), (("k", col("s")), ("a", col("o"))))
        right = Project(TableScan("u", KV), (("k", col("s")), ("b", col("o"))))
        join = Join(left, right, on=("k",))
        final = Project(join, (("a", col("a")),))
        optimized = optimize(final)
        # Both scans must still read their join key column "s".
        scans = [p for p in _walk(optimized) if isinstance(p, TableScan)]
        assert all("s" in scan.columns for scan in scans)


def _walk(plan):
    yield plan
    for child in plan.children:
        yield from _walk(child)


# -- semantic preservation (property-based) -----------------------------------

_VALUES = ["a", "b", "c", None]
_rows = st.lists(
    st.tuples(st.sampled_from(_VALUES), st.sampled_from(_VALUES)), max_size=25
)


@given(_rows, _rows, st.sampled_from(["a", "b", "zzz"]))
@settings(max_examples=40, deadline=None)
def test_property_optimizer_preserves_join_filter_semantics(left_rows, right_rows, constant):
    """Optimized and unoptimized plans agree on a filter-over-join query."""
    session = make_session()
    session.register_rows("l", KV, left_rows)
    session.register_rows(
        "r", TableSchema([ColumnSchema("s", "string"), ColumnSchema("w", "string")]),
        right_rows,
    )
    frame = (
        session.table("l")
        .rename({"o": "v"})
        .join(session.table("r").rename({"w": "u"}), on=["s"])
        .filter(col("v") == lit(constant))
    )
    def row_key(row):
        return tuple((value is None, value or "") for value in row)

    optimized = sorted(frame.collect(run_optimizer=True), key=row_key)
    raw = sorted(frame.collect(run_optimizer=False), key=row_key)
    assert optimized == raw
