"""Expression tree tests: operators, NULL semantics, binding, describe."""

import pytest

from repro.columnar import ColumnSchema, TableSchema
from repro.engine import col, lit
from repro.engine.expressions import and_all
from repro.errors import PlanError, SchemaError

SCHEMA = TableSchema(
    [
        ColumnSchema("name", "string"),
        ColumnSchema("age", "int"),
        ColumnSchema("tags", "list<string>"),
    ]
)


def run(expression, row):
    return expression.bind(SCHEMA)(row)


class TestComparisons:
    def test_equality(self):
        assert run(col("name") == lit("a"), ("a", 1, [])) is True
        assert run(col("name") == lit("a"), ("b", 1, [])) is False

    def test_ordering_operators(self):
        assert run(col("age") > lit(5), ("a", 6, []))
        assert run(col("age") >= lit(6), ("a", 6, []))
        assert run(col("age") < lit(7), ("a", 6, []))
        assert run(col("age") <= lit(6), ("a", 6, []))
        assert run(col("age") != lit(5), ("a", 6, []))

    def test_null_operand_is_false(self):
        assert run(col("age") > lit(5), ("a", None, [])) is False
        assert run(col("age") == lit(None), ("a", None, [])) is False

    def test_type_mismatch_is_false(self):
        assert run(col("name") > lit(5), ("a", 1, [])) is False

    def test_column_to_column(self):
        schema = TableSchema([ColumnSchema("a", "int"), ColumnSchema("b", "int")])
        expr = col("a") == col("b")
        assert expr.bind(schema)((3, 3))
        assert not expr.bind(schema)((3, 4))


class TestBooleanOps:
    def test_and(self):
        expr = (col("age") > lit(1)) & (col("name") == lit("a"))
        assert run(expr, ("a", 2, []))
        assert not run(expr, ("b", 2, []))

    def test_or(self):
        expr = (col("age") > lit(10)) | (col("name") == lit("a"))
        assert run(expr, ("a", 2, []))
        assert not run(expr, ("b", 2, []))

    def test_not(self):
        assert run(~(col("age") > lit(10)), ("a", 2, []))

    def test_and_all_helper(self):
        assert and_all([]) is None
        single = col("age") > lit(1)
        assert and_all([single]) is single
        combined = and_all([single, col("name") == lit("a")])
        assert combined.bind(SCHEMA)(("a", 2, []))


class TestPredicates:
    def test_is_not_null(self):
        assert run(col("age").is_not_null(), ("a", 1, []))
        assert not run(col("age").is_not_null(), ("a", None, []))

    def test_is_null(self):
        assert run(col("age").is_null(), ("a", None, []))

    def test_array_contains(self):
        expr = col("tags").contains_element(lit("x"))
        assert run(expr, ("a", 1, ["x", "y"]))
        assert not run(expr, ("a", 1, ["y"]))
        assert not run(expr, ("a", 1, None))

    def test_rlike(self):
        expr = col("name").rlike("^a.c$")
        assert run(expr, ("abc", 1, []))
        assert not run(expr, ("xbc", 1, []))
        assert not run(expr, (None, 1, []))


class TestStructure:
    def test_references_collected(self):
        expr = (col("age") > lit(1)) & col("name").is_not_null()
        assert expr.references() == {"age", "name"}

    def test_binding_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            col("zzz").bind(SCHEMA)

    def test_unknown_comparison_operator_rejected(self):
        from repro.engine.expressions import BinaryComparison

        with pytest.raises(PlanError):
            BinaryComparison("<>", col("a"), lit(1))

    def test_describe_is_readable(self):
        expr = (col("age") > lit(18)) & col("tags").contains_element(lit("x"))
        text = expr.describe()
        assert "age" in text and ">" in text and "array_contains" in text
