"""Engine aggregation operator tests."""

import pytest

from repro.columnar import ColumnSchema, TableSchema
from repro.engine import ClusterConfig, EngineSession, SimulatedCluster
from repro.errors import PlanError

KV = TableSchema([ColumnSchema("k", "string"), ColumnSchema("v", "string")])


def make_session() -> EngineSession:
    session = EngineSession(SimulatedCluster(ClusterConfig(num_workers=3)))
    session.register_rows(
        "t", KV,
        [("a", "1"), ("a", "2"), ("b", "1"), ("a", "1"), ("c", None), (None, "9")],
    )
    return session


class TestGroupedCounts:
    def test_count_column_skips_nulls(self):
        rows = make_session().table("t").group_aggregate(
            ["k"], [("count", "v", "n")]
        ).collect()
        assert dict((r[0], r[1]) for r in rows) == {"a": 3, "b": 1, "c": 0, None: 1}

    def test_count_rows(self):
        rows = make_session().table("t").group_aggregate(
            ["k"], [("count", None, "n")]
        ).collect()
        assert dict((r[0], r[1]) for r in rows) == {"a": 3, "b": 1, "c": 1, None: 1}

    def test_count_distinct(self):
        rows = make_session().table("t").group_aggregate(
            ["k"], [("count_distinct", "v", "n")]
        ).collect()
        assert dict((r[0], r[1]) for r in rows) == {"a": 2, "b": 1, "c": 0, None: 1}

    def test_multiple_aggregates_in_one_pass(self):
        rows = make_session().table("t").group_aggregate(
            ["k"], [("count", "v", "n"), ("count_distinct", "v", "d")]
        ).collect()
        a_row = [r for r in rows if r[0] == "a"][0]
        assert a_row == ("a", 3, 2)


class TestGlobalCounts:
    def test_global_count(self):
        rows = make_session().table("t").group_aggregate(
            [], [("count", None, "total")]
        ).collect()
        assert rows == [(6,)]

    def test_global_count_on_empty_input_is_zero(self):
        session = make_session()
        empty = session.create_dataframe(KV, [])
        assert empty.group_aggregate([], [("count", None, "n")]).collect() == [(0,)]

    def test_count_distinct_whole_rows(self):
        rows = make_session().table("t").group_aggregate(
            [], [("count_distinct", None, "n")]
        ).collect()
        assert rows == [(5,)]  # ("a","1") appears twice


class TestSchemaAndValidation:
    def test_output_schema(self):
        frame = make_session().table("t").group_aggregate(["k"], [("count", "v", "n")])
        assert frame.columns == ("k", "n")
        assert frame.schema.column("n").type == "int"

    def test_unknown_key_rejected(self):
        with pytest.raises(PlanError):
            make_session().table("t").group_aggregate(["zzz"], [("count", None, "n")])

    def test_unknown_input_rejected(self):
        with pytest.raises(PlanError):
            make_session().table("t").group_aggregate(["k"], [("count", "zzz", "n")])

    def test_unknown_op_rejected(self):
        with pytest.raises(PlanError):
            make_session().table("t").group_aggregate(["k"], [("sum", "v", "n")])

    def test_output_name_clash_rejected(self):
        with pytest.raises(PlanError):
            make_session().table("t").group_aggregate(["k"], [("count", "v", "k")])

    def test_no_aggregates_rejected(self):
        with pytest.raises(PlanError):
            make_session().table("t").group_aggregate(["k"], [])


class TestCostAccounting:
    def test_partial_aggregation_shuffles_groups_not_rows(self):
        session = EngineSession(SimulatedCluster(ClusterConfig(num_workers=3)))
        rows = [(f"k{i % 4}", str(i)) for i in range(1000)]
        session.register_rows("big", KV, rows)
        frame = session.table("big").group_aggregate(["k"], [("count", None, "n")])
        _, report = frame.collect_with_report()
        # At most partitions × groups partial states cross the network.
        assert report.metrics.shuffle_rows <= 6 * 4
        assert report.metrics.shuffle_rows < 1000

    def test_optimizer_prunes_unused_columns(self):
        session = make_session()
        session.register_rows(
            "w",
            TableSchema([ColumnSchema(c, "string") for c in ("a", "b", "c")]),
            [("x", "y", "z")] * 10,
            persist_path="/w",
        )
        frame = session.table("w").group_aggregate(["a"], [("count", "b", "n")])
        plan = frame.explain()
        assert "columns=['a', 'b']" in plan
