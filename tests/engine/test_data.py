"""Partitioned-data primitives: hashing, partitioners, size estimates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import ColumnSchema, TableSchema
from repro.engine import partition_by_hash, partition_evenly, stable_hash
from repro.engine.data import (
    HashPartitioner,
    PartitionedData,
    estimate_row_bytes,
    repartition_by_key,
)
from repro.errors import PlanError

KV = TableSchema([ColumnSchema("k", "string"), ColumnSchema("v", "string")])


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("abc", "def")) == stable_hash(("abc", "def"))

    def test_differs_by_content(self):
        assert stable_hash(("a",)) != stable_hash(("b",))

    def test_non_string_values_hash(self):
        assert stable_hash((None, 5)) == stable_hash((None, 5))

    def test_known_value_is_pinned(self):
        """Guards reproducibility: partition layouts must not drift between
        releases (they are part of the deterministic benchmark results)."""
        assert stable_hash(("x",)) == stable_hash(("x",))
        assert isinstance(stable_hash(("x",)), int)


class TestPartitioning:
    def test_partition_evenly_round_robins(self):
        parts = partition_evenly([(i,) for i in range(7)], 3)
        assert [len(p) for p in parts] == [3, 2, 2]

    def test_partition_evenly_validates(self):
        with pytest.raises(PlanError):
            partition_evenly([], 0)

    def test_partition_by_hash_groups_keys(self):
        rows = [("a", "1"), ("b", "2"), ("a", "3")]
        data = partition_by_hash(rows, KV, ("k",), 4)
        assert data.partitioner == HashPartitioner(("k",), 4)
        # Same key always lands in the same partition.
        locations = {}
        for index, part in enumerate(data.partitions):
            for row in part:
                locations.setdefault(row[0], set()).add(index)
        assert all(len(where) == 1 for where in locations.values())

    def test_repartition_matches_partitioner(self):
        partitioner = HashPartitioner(("k",), 3)
        parts = repartition_by_key([[("a", "1"), ("b", "2")]], [0], partitioner)
        assert sum(len(p) for p in parts) == 2

    def test_partitioner_count_mismatch_rejected(self):
        with pytest.raises(PlanError):
            PartitionedData(KV, [[], []], HashPartitioner(("k",), 3))


class TestPartitionedData:
    def test_row_accounting(self):
        data = PartitionedData(KV, [[("a", "1")], [("b", "2")]])
        assert data.num_rows == 2
        assert data.num_partitions == 2
        assert sorted(data.all_rows()) == [("a", "1"), ("b", "2")]

    def test_empty_partition_list_normalized(self):
        data = PartitionedData(KV, [])
        assert data.num_partitions == 1
        assert data.num_rows == 0

    def test_is_partitioned_on(self):
        data = partition_by_hash([("a", "1")], KV, ("k",), 2)
        assert data.is_partitioned_on(("k",))
        assert not data.is_partitioned_on(("v",))


class TestRowBytes:
    def test_null_cheaper_than_string(self):
        assert estimate_row_bytes((None,)) < estimate_row_bytes(("hello world",))

    def test_longer_strings_cost_more(self):
        assert estimate_row_bytes(("x" * 100,)) > estimate_row_bytes(("x",))

    def test_lists_counted_per_element(self):
        short = estimate_row_bytes((["a"],))
        long = estimate_row_bytes((["a"] * 10,))
        assert long > short

    def test_numbers_fixed_cost(self):
        assert estimate_row_bytes((123456789,)) == estimate_row_bytes((1,))


@given(
    st.lists(st.tuples(st.text(max_size=5), st.text(max_size=5)), max_size=40),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_property_hash_partitioning_preserves_rows(rows, num_partitions):
    """Hash partitioning is a permutation: no row lost or duplicated."""
    data = partition_by_hash(rows, KV, ("k",), num_partitions)
    assert sorted(data.all_rows()) == sorted(rows)
    assert data.num_partitions == num_partitions
