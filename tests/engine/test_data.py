"""Partitioned-data primitives: hashing, partitioners, size estimates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.engine.data as data_module
from repro.columnar import ColumnSchema, TableSchema
from repro.engine import EngineSession, partition_by_hash, partition_evenly, stable_hash
from repro.engine.data import (
    HashPartitioner,
    PartitionedData,
    estimate_row_bytes,
    repartition_by_key,
)
from repro.errors import PlanError
from repro.rdf.dictionary import TERM_ID_BASE, default_dictionary

KV = TableSchema([ColumnSchema("k", "string"), ColumnSchema("v", "string")])


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("abc", "def")) == stable_hash(("abc", "def"))

    def test_differs_by_content(self):
        assert stable_hash(("a",)) != stable_hash(("b",))

    def test_non_string_values_hash(self):
        assert stable_hash((None, 5)) == stable_hash((None, 5))

    def test_known_values_are_pinned(self):
        """Guards reproducibility: partition layouts must not drift between
        releases (they are part of the deterministic benchmark results)."""
        assert stable_hash(("<http://ex/a>",)) == 1474185243
        assert stable_hash(("abc", "def")) == 27852855263
        assert stable_hash((0,)) == 7070836379803831727
        assert stable_hash((1, "x")) == 1169686467671577058
        assert stable_hash((None,)) == 3751981041

    def test_single_key_fast_path_matches_partition_for(self):
        """The scalar-key shuffle in ``repartition_by_key`` must place every
        row exactly where ``partition_for`` would — co-partitioned joins
        depend on both sides agreeing."""
        partitioner = HashPartitioner(("k",), 5)
        rows = [
            ("abc", "1"),
            (TERM_ID_BASE + 7, "2"),
            (123, "3"),
            (None, "4"),
            (("odd", "key"), "5"),
        ]
        placed = repartition_by_key([rows], [0], partitioner)
        for index, part in enumerate(placed):
            for row in part:
                assert partitioner.partition_for((row[0],)) == index

    def test_dense_ints_scatter(self):
        """Consecutive dictionary IDs must not land in consecutive
        partitions (splitmix64 mixing, not identity hashing)."""
        partitioner = HashPartitioner(("k",), 8)
        placements = [
            partitioner.partition_for((TERM_ID_BASE + i,)) for i in range(64)
        ]
        assert len(set(placements)) == 8
        assert placements != sorted(placements)


class TestPartitioning:
    def test_partition_evenly_round_robins(self):
        parts = partition_evenly([(i,) for i in range(7)], 3)
        assert [len(p) for p in parts] == [3, 2, 2]

    def test_partition_evenly_validates(self):
        with pytest.raises(PlanError):
            partition_evenly([], 0)

    def test_partition_by_hash_groups_keys(self):
        rows = [("a", "1"), ("b", "2"), ("a", "3")]
        data = partition_by_hash(rows, KV, ("k",), 4)
        assert data.partitioner == HashPartitioner(("k",), 4)
        # Same key always lands in the same partition.
        locations = {}
        for index, part in enumerate(data.partitions):
            for row in part:
                locations.setdefault(row[0], set()).add(index)
        assert all(len(where) == 1 for where in locations.values())

    def test_repartition_matches_partitioner(self):
        partitioner = HashPartitioner(("k",), 3)
        parts = repartition_by_key([[("a", "1"), ("b", "2")]], [0], partitioner)
        assert sum(len(p) for p in parts) == 2

    def test_partitioner_count_mismatch_rejected(self):
        with pytest.raises(PlanError):
            PartitionedData(KV, [[], []], HashPartitioner(("k",), 3))


class TestPartitionedData:
    def test_row_accounting(self):
        data = PartitionedData(KV, [[("a", "1")], [("b", "2")]])
        assert data.num_rows == 2
        assert data.num_partitions == 2
        assert sorted(data.all_rows()) == [("a", "1"), ("b", "2")]

    def test_empty_partition_list_normalized(self):
        data = PartitionedData(KV, [])
        assert data.num_partitions == 1
        assert data.num_rows == 0

    def test_is_partitioned_on(self):
        data = partition_by_hash([("a", "1")], KV, ("k",), 2)
        assert data.is_partitioned_on(("k",))
        assert not data.is_partitioned_on(("v",))


class TestRowBytes:
    def test_null_cheaper_than_string(self):
        assert estimate_row_bytes((None,)) < estimate_row_bytes(("hello world",))

    def test_longer_strings_cost_more(self):
        assert estimate_row_bytes(("x" * 100,)) > estimate_row_bytes(("x",))

    def test_lists_counted_per_element(self):
        short = estimate_row_bytes((["a"],))
        long = estimate_row_bytes((["a"] * 10,))
        assert long > short

    def test_numbers_fixed_cost(self):
        assert estimate_row_bytes((123456789,)) == estimate_row_bytes((1,))

    def test_term_ids_charge_decoded_size(self):
        """The cost model must keep charging the *emulated decoded* bytes:
        shuffle totals and broadcast decisions cannot change just because
        cells shrank to dictionary IDs."""
        text = "<http://ex/a-rather-long-iri-for-sizing>"
        term_id = default_dictionary().intern_text(text)
        assert estimate_row_bytes((term_id,)) == estimate_row_bytes((text,))

    def test_term_ids_in_lists_charge_decoded_size(self):
        texts = ["<http://ex/one>", "<http://ex/two-longer>"]
        ids = [default_dictionary().intern_text(t) for t in texts]
        assert estimate_row_bytes((ids,)) == estimate_row_bytes((texts,))


class TestSizingMemoization:
    def _counting(self, monkeypatch):
        real = data_module.estimate_row_bytes
        state = {"calls": 0, "per_row": {}, "kept": []}

        def wrapper(row):
            state["calls"] += 1
            state["per_row"][id(row)] = state["per_row"].get(id(row), 0) + 1
            state["kept"].append(row)  # pin row objects so ids stay unique
            return real(row)

        monkeypatch.setattr(data_module, "estimate_row_bytes", wrapper)
        return state

    def test_estimated_bytes_walks_cells_once(self, monkeypatch):
        state = self._counting(monkeypatch)
        data = PartitionedData(KV, [[("a", "1"), ("b", "2")], [("c", "3")]])
        first = data.estimated_bytes()
        assert data.estimated_bytes() == first
        assert data.estimated_bytes() == first
        assert state["calls"] == data.num_rows

    def test_num_rows_memoized(self):
        data = PartitionedData(KV, [[("a", "1")], [("b", "2")]])
        assert data.num_rows == 2
        assert data._num_rows == 2  # populated by the first access

    def test_three_join_plan_sizes_each_row_at_most_once(self, monkeypatch):
        """Regression: the join planner consults both sides of every join;
        the seed re-walked every cell per consultation, turning a 3-join
        plan into an O(joins × cells) sizing pass."""
        session = EngineSession()

        def schema(*names):
            return TableSchema([ColumnSchema(name, "string") for name in names])

        n = 40
        session.register_rows("t1", schema("a", "b"), [(f"k{i}", f"x{i}") for i in range(n)])
        session.register_rows("t2", schema("b", "c"), [(f"x{i}", f"y{i}") for i in range(n)])
        session.register_rows("t3", schema("c", "d"), [(f"y{i}", f"z{i}") for i in range(n)])
        session.register_rows("t4", schema("d", "e"), [(f"z{i}", f"w{i}") for i in range(n)])

        state = self._counting(monkeypatch)
        frame = (
            session.table("t1")
            .join(session.table("t2"), on=["b"])
            .join(session.table("t3"), on=["c"])
            .join(session.table("t4"), on=["d"])
        )
        rows = frame.collect()
        assert len(rows) == n
        assert state["calls"] > 0
        assert max(state["per_row"].values()) == 1


@given(
    st.lists(st.tuples(st.text(max_size=5), st.text(max_size=5)), max_size=40),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_property_hash_partitioning_preserves_rows(rows, num_partitions):
    """Hash partitioning is a permutation: no row lost or duplicated."""
    data = partition_by_hash(rows, KV, ("k",), num_partitions)
    assert sorted(data.all_rows()) == sorted(rows)
    assert data.num_partitions == num_partitions
