"""Optimizer semantic-equivalence property tests over random pipelines.

The strongest guarantee the optimizer must give: for *any* plan the
DataFrame API can build, the optimized plan returns exactly the same rows as
the unoptimized one. These tests generate random pipelines mixing filters,
renames, explodes, unions, distinct, and joins, and compare both executions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import ColumnSchema, TableSchema
from repro.engine import ClusterConfig, EngineSession, SimulatedCluster, col, lit

LISTY = TableSchema(
    [
        ColumnSchema("k", "string"),
        ColumnSchema("v", "string"),
        ColumnSchema("xs", "list<string>"),
    ]
)

_VALUES = ["a", "b", "c", None]
_rows = st.lists(
    st.tuples(
        st.sampled_from(_VALUES),
        st.sampled_from(_VALUES),
        st.none() | st.lists(st.sampled_from(["x", "y", "z"]), max_size=3),
    ),
    max_size=20,
)

#: Pipeline steps as (name, argument) pairs interpreted by _apply_steps.
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("filter_k"), st.sampled_from(["a", "b", "zzz"])),
        st.tuples(st.just("filter_v_notnull"), st.none()),
        st.tuples(st.just("rename"), st.none()),
        st.tuples(st.just("explode"), st.none()),
        st.tuples(st.just("distinct"), st.none()),
        st.tuples(st.just("filter_exploded"), st.sampled_from(["x", "y"])),
    ),
    max_size=5,
)


def _apply_steps(frame, steps):
    exploded = False
    renamed = False
    for name, argument in steps:
        columns = set(frame.columns)
        if name == "filter_k":
            key = "key" if renamed and "key" in columns else "k"
            if key in columns:
                frame = frame.filter(col(key) == lit(argument))
        elif name == "filter_v_notnull" and "v" in columns:
            frame = frame.filter(col("v").is_not_null())
        elif name == "rename" and not renamed and "k" in columns:
            frame = frame.rename({"k": "key"})
            renamed = True
        elif name == "explode" and not exploded and "xs" in columns:
            frame = frame.explode("xs", "x")
            exploded = True
        elif name == "distinct":
            frame = frame.distinct()
        elif name == "filter_exploded" and exploded and "x" in columns:
            frame = frame.filter(col("x") == lit(argument))
    return frame


def _row_key(row):
    return tuple(
        (value is None, tuple(value) if isinstance(value, list) else value or "")
        for value in row
    )


@given(_rows, _steps)
@settings(max_examples=60, deadline=None)
def test_property_random_pipelines_are_optimizer_invariant(rows, steps):
    session = EngineSession(SimulatedCluster(ClusterConfig(num_workers=2)))
    session.register_rows("t", LISTY, rows)
    frame = _apply_steps(session.table("t"), steps)
    optimized = sorted(frame.collect(run_optimizer=True), key=_row_key)
    raw = sorted(frame.collect(run_optimizer=False), key=_row_key)
    assert optimized == raw


@given(_rows, _rows, _steps)
@settings(max_examples=40, deadline=None)
def test_property_union_pipelines_are_optimizer_invariant(left_rows, right_rows, steps):
    session = EngineSession(SimulatedCluster(ClusterConfig(num_workers=2)))
    session.register_rows("l", LISTY, left_rows)
    session.register_rows("r", LISTY, right_rows)
    frame = _apply_steps(session.table("l").union(session.table("r")), steps)
    optimized = sorted(frame.collect(run_optimizer=True), key=_row_key)
    raw = sorted(frame.collect(run_optimizer=False), key=_row_key)
    assert optimized == raw


#: Fuzzer-generated SPARQL plans: the optimizer must be invisible on every
#: logical plan the translators emit, not just hand-built pipelines. Each
#: seed contributes a random graph and several random BGP queries (stars,
#: paths, snowflakes, cycles, filters, unbound predicates — see
#: ``repro.testing.querygen``); the compiled DataFrame must collect the same
#: rows with the optimizer on and off.
_FUZZ_PLAN_SEEDS = (0, 1, 2, 5, 8)


@pytest.mark.parametrize("strategy", ["mixed", "vp"])
@pytest.mark.parametrize("seed", _FUZZ_PLAN_SEEDS)
def test_fuzzer_generated_prost_plans_are_optimizer_invariant(strategy, seed):
    from repro.core import ProstEngine
    from repro.testing import DifferentialRunner

    graph, queries = DifferentialRunner(queries_per_graph=6).generate_case(seed)
    engine = ProstEngine(strategy=strategy)
    engine.load(graph)
    for query in queries:
        frame, _ = engine.dataframe(query)
        optimized = sorted(frame.collect(run_optimizer=True), key=_row_key)
        raw = sorted(frame.collect(run_optimizer=False), key=_row_key)
        assert optimized == raw, f"seed={seed}: optimizer changed rows of {query}"


@pytest.mark.parametrize("seed", _FUZZ_PLAN_SEEDS)
def test_fuzzer_generated_sparqlgx_plans_are_optimizer_invariant(seed):
    from repro.baselines import SparqlGx
    from repro.testing import DifferentialRunner

    graph, queries = DifferentialRunner(queries_per_graph=6).generate_case(seed)
    engine = SparqlGx()
    engine.load(graph)
    for query in queries:
        frame = engine.dataframe(query)
        optimized = sorted(frame.collect(run_optimizer=True), key=_row_key)
        raw = sorted(frame.collect(run_optimizer=False), key=_row_key)
        assert optimized == raw, f"seed={seed}: optimizer changed rows of {query}"


@given(_rows, _rows, st.sampled_from(["a", "b", "zzz"]))
@settings(max_examples=40, deadline=None)
def test_property_aggregate_after_join_is_optimizer_invariant(left_rows, right_rows, constant):
    session = EngineSession(SimulatedCluster(ClusterConfig(num_workers=2)))
    session.register_rows("l", LISTY, left_rows)
    session.register_rows(
        "r",
        TableSchema([ColumnSchema("k", "string"), ColumnSchema("w", "string")]),
        [(row[0], row[1]) for row in right_rows],
    )
    frame = (
        session.table("l")
        .join(session.table("r"), on=["k"])
        .filter(col("v") == lit(constant))
        .group_aggregate(["k"], [("count", "w", "n"), ("count_distinct", "w", "d")])
    )
    optimized = sorted(frame.collect(run_optimizer=True), key=_row_key)
    raw = sorted(frame.collect(run_optimizer=False), key=_row_key)
    assert optimized == raw
