"""Spill-file lifecycle: creation under ``spill_dir``, determinism, cleanup.

Spill files are per-query scratch state. The contract exercised here:

- a budgeted query that spills writes its bucket files under the
  configured ``spill_dir`` (system temp dir when unset);
- the per-query directory is removed when the query finishes — on
  success, on timeout, and on a mid-query executor failure alike
  (the session's ``finally`` owns this);
- relative spill paths and file bytes are identical across reruns of
  the same query, which is what makes governed chaos runs replayable;
- governance off means no per-query governor state at all.
"""

import os

import pytest

from repro.core.prost import ProstEngine
from repro.engine import ClusterConfig, ExecutionMetrics
from repro.engine.cluster import SimulatedCluster
from repro.errors import ExecutionError, QueryTimeoutError, ValidationError
from repro.governor import GovernorContext, governor_context_for
from repro.rdf.graph import Graph

NTRIPLES = """\
<http://x/a> <http://x/p> <http://x/m1> .
<http://x/b> <http://x/p> <http://x/m2> .
<http://x/c> <http://x/p> <http://x/m3> .
<http://x/m1> <http://x/q> <http://x/o1> .
<http://x/m2> <http://x/q> <http://x/o2> .
<http://x/m3> <http://x/q> <http://x/o3> .
"""

JOIN_QUERY = "SELECT ?s ?o WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?o }"


def _engine(**config_kwargs) -> ProstEngine:
    engine = ProstEngine(
        cluster_config=ClusterConfig(num_workers=2, **config_kwargs)
    )
    engine.load(Graph.from_ntriples(NTRIPLES))
    return engine


def _capture_spills(monkeypatch):
    """Snapshot every query's spill files at cleanup time.

    ``cleanup`` runs in the session's ``finally`` before control returns to
    the test, so this is the only window in which the files still exist.
    Paths are recorded relative to the per-query directory because its
    ``mkdtemp`` name is intentionally unique per run.
    """
    captured: list[list[tuple[str, bytes]]] = []
    original = GovernorContext.cleanup

    def capturing(self):
        if self._query_spill_dir is not None:
            snapshot = sorted(
                (os.path.relpath(path, self._query_spill_dir), _read(path))
                for path in self.spill_paths
            )
            captured.append(snapshot)
        original(self)

    def _read(path):
        with open(path, "rb") as handle:
            return handle.read()

    monkeypatch.setattr(GovernorContext, "cleanup", capturing)
    return captured


class TestSpillDirectory:
    def test_budgeted_query_spills_under_the_configured_dir(
        self, tmp_path, monkeypatch
    ):
        captured = _capture_spills(monkeypatch)
        engine = _engine(memory_budget_bytes=64, spill_dir=str(tmp_path))
        engine.sparql(JOIN_QUERY)
        assert engine.session.cluster.session_metrics.spills > 0
        assert captured and captured[-1], "query never wrote a spill file"
        for relative, _ in captured[-1]:
            assert relative.startswith("spill-")
            assert relative.endswith(".pkl")

    def test_spill_files_are_removed_on_success(self, tmp_path):
        engine = _engine(memory_budget_bytes=64, spill_dir=str(tmp_path))
        engine.sparql(JOIN_QUERY)
        assert engine.session.cluster.session_metrics.spills > 0
        assert list(tmp_path.iterdir()) == []

    def test_spill_files_are_removed_on_timeout(self, tmp_path):
        engine = _engine(
            memory_budget_bytes=64,
            query_timeout_sec=1e-9,
            spill_dir=str(tmp_path),
        )
        with pytest.raises(QueryTimeoutError) as info:
            engine.sparql(JOIN_QUERY)
        assert isinstance(info.value.metrics, ExecutionMetrics)
        assert list(tmp_path.iterdir()) == []

    def test_spill_files_are_removed_on_executor_failure(
        self, tmp_path, monkeypatch
    ):
        engine = _engine(memory_budget_bytes=64, spill_dir=str(tmp_path))
        executor = engine.session._executor
        original = type(executor).execute

        def failing(self, plan, metrics, tracer=None):
            governor = metrics.governor
            store = governor.new_spill_store(metrics)
            store.write("bucket-0000-left", [("orphan",)])
            assert os.path.exists(store.paths[0])
            raise ExecutionError("injected mid-query failure")

        monkeypatch.setattr(type(executor), "execute", failing)
        with pytest.raises(ExecutionError, match="injected mid-query"):
            engine.sparql(JOIN_QUERY)
        assert list(tmp_path.iterdir()) == []

    def test_cleanup_is_idempotent(self, tmp_path):
        context = GovernorContext(budget_bytes=64, spill_root=str(tmp_path))
        store = context.new_spill_store(ExecutionMetrics())
        store.write("bucket-0000-left", [("a",)])
        assert context.spill_paths
        context.cleanup()
        context.cleanup()
        assert list(tmp_path.iterdir()) == []


class TestDeterminism:
    def test_bucket_contents_are_identical_across_query_reruns(
        self, tmp_path, monkeypatch
    ):
        captured = _capture_spills(monkeypatch)
        for run in ("first", "second"):
            engine = _engine(
                memory_budget_bytes=64, spill_dir=str(tmp_path / run)
            )
            engine.sparql(JOIN_QUERY)
        assert len(captured) == 2
        assert captured[0] == captured[1]
        assert captured[0], "reruns never spilled"


class TestConfiguration:
    def test_no_governor_state_when_unconfigured(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEM_BUDGET", raising=False)
        monkeypatch.delenv("REPRO_QUERY_TIMEOUT", raising=False)
        cluster = SimulatedCluster(ClusterConfig(num_workers=2))
        assert cluster.new_query_metrics().governor is None

    def test_env_vars_create_a_governor_context(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEM_BUDGET", "65536")
        monkeypatch.setenv("REPRO_QUERY_TIMEOUT", "30")
        context = governor_context_for(ClusterConfig(num_workers=2))
        assert context is not None
        assert context.budget.limit_bytes == 65536
        assert context.deadline.timeout_sec == 30.0

    def test_explicit_config_fields_win_over_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEM_BUDGET", "65536")
        context = governor_context_for(
            ClusterConfig(num_workers=2, memory_budget_bytes=128)
        )
        assert context.budget.limit_bytes == 128

    @pytest.mark.parametrize("value", ["not-a-number", "-1", "0"])
    def test_bad_env_values_are_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_MEM_BUDGET", value)
        with pytest.raises(ValidationError, match="REPRO_MEM_BUDGET"):
            governor_context_for(ClusterConfig(num_workers=2))
        monkeypatch.delenv("REPRO_MEM_BUDGET")
        monkeypatch.setenv("REPRO_QUERY_TIMEOUT", value)
        with pytest.raises(ValidationError, match="REPRO_QUERY_TIMEOUT"):
            governor_context_for(ClusterConfig(num_workers=2))
