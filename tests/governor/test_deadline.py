"""Deadline semantics under a fake clock, and the context's stage polling."""

import pytest

from repro.engine import ExecutionMetrics
from repro.errors import (
    ExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
    ValidationError,
)
from repro.governor import Deadline, GovernorContext


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValidationError):
            Deadline(0)
        with pytest.raises(ValidationError):
            Deadline(-1.0)

    def test_wall_clock_expiry(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock)
        assert not deadline.expired
        clock.advance(9.0)
        assert deadline.remaining_sec == pytest.approx(1.0)
        clock.advance(1.5)
        assert deadline.expired

    def test_charged_simulated_seconds_count_against_the_budget(self):
        # Retry backoff never elapses on the wall clock, yet the deadline
        # must count it — that is what makes timeouts deterministic under a
        # seeded fault plan.
        clock = FakeClock()
        deadline = Deadline(10.0, clock)
        deadline.charge(6.0)
        clock.advance(3.0)
        assert deadline.elapsed_sec == pytest.approx(9.0)
        assert not deadline.expired
        deadline.charge(1.5)
        assert deadline.expired


class TestGovernorContextPolling:
    def test_on_stage_is_a_no_op_before_expiry(self):
        clock = FakeClock()
        context = GovernorContext(timeout_sec=5.0, clock=clock)
        context.on_stage(ExecutionMetrics())  # must not raise

    def test_timeout_raises_with_partial_metrics_attached(self):
        clock = FakeClock()
        context = GovernorContext(timeout_sec=5.0, clock=clock)
        metrics = ExecutionMetrics(rows_processed=42, stages=3)
        clock.advance(6.0)
        with pytest.raises(QueryTimeoutError) as info:
            context.on_stage(metrics)
        assert info.value.metrics is metrics
        assert isinstance(info.value, ExecutionError)
        assert "5" in str(info.value)

    def test_cancel_wins_over_timeout(self):
        clock = FakeClock()
        context = GovernorContext(timeout_sec=5.0, clock=clock)
        clock.advance(10.0)
        context.cancel("user hit ctrl-c")
        metrics = ExecutionMetrics()
        with pytest.raises(QueryCancelledError) as info:
            context.on_stage(metrics)
        assert "user hit ctrl-c" in str(info.value)
        assert info.value.metrics is metrics

    def test_on_retry_wait_charges_simulated_backoff(self):
        clock = FakeClock()
        context = GovernorContext(timeout_sec=5.0, clock=clock)
        metrics = ExecutionMetrics()
        context.on_retry_wait(metrics, 3.0)  # fine: 3s of 5s
        with pytest.raises(QueryTimeoutError):
            context.on_retry_wait(metrics, 3.0)  # 6s of 5s
        assert context.deadline.charged_sec == pytest.approx(6.0)

    def test_untimed_context_never_expires(self):
        context = GovernorContext(budget_bytes=100)
        assert context.deadline is None
        context.on_stage(ExecutionMetrics())
        context.on_retry_wait(ExecutionMetrics(), 1e9)
