"""Admission control: slots, bounded queueing, load-shedding, reservations."""

import threading

import pytest

from repro.engine import ClusterConfig
from repro.errors import AdmissionRejectedError, ValidationError
from repro.governor import Governor


class TestValidation:
    def test_bad_limits_rejected(self):
        with pytest.raises(ValidationError):
            Governor(max_concurrent_queries=0)
        with pytest.raises(ValidationError):
            Governor(max_queue_depth=-1)
        with pytest.raises(ValidationError):
            Governor(queue_timeout_sec=0)
        with pytest.raises(ValidationError):
            Governor(memory_budget_bytes=0)


class TestSlots:
    def test_admits_up_to_the_slot_count(self):
        governor = Governor(max_concurrent_queries=2)
        with governor.admit():
            with governor.admit():
                assert governor.active_queries == 2
        assert governor.active_queries == 0
        assert governor.admitted == 2
        assert governor.peak_concurrent == 2

    def test_full_queue_sheds_immediately(self):
        governor = Governor(max_concurrent_queries=1, max_queue_depth=0)
        with governor.admit():
            with pytest.raises(AdmissionRejectedError, match="queue full"):
                with governor.admit():
                    pass
        assert governor.rejected == 1

    def test_queue_wait_times_out(self):
        governor = Governor(
            max_concurrent_queries=1, max_queue_depth=4, queue_timeout_sec=0.05
        )
        with governor.admit():
            with pytest.raises(AdmissionRejectedError, match="no query slot"):
                with governor.admit():
                    pass
        assert governor.rejected == 1

    def test_released_slot_is_granted_to_a_waiter(self):
        governor = Governor(
            max_concurrent_queries=1, max_queue_depth=4, queue_timeout_sec=5.0
        )
        entered = threading.Event()
        release = threading.Event()
        outcomes: list[str] = []

        def holder():
            with governor.admit():
                entered.set()
                release.wait(timeout=5.0)

        def waiter():
            entered.wait(timeout=5.0)
            try:
                with governor.admit():
                    outcomes.append("admitted")
            except AdmissionRejectedError:
                outcomes.append("rejected")

        threads = [threading.Thread(target=holder), threading.Thread(target=waiter)]
        for thread in threads:
            thread.start()
        entered.wait(timeout=5.0)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert outcomes == ["admitted"]
        assert governor.admitted == 2
        assert governor.rejected == 0
        assert governor.active_queries == 0


class TestMemoryReservations:
    def test_aggregate_limit_is_budget_times_slots(self):
        governor = Governor(max_concurrent_queries=4, memory_budget_bytes=100)
        assert governor.aggregate_memory_limit == 400
        assert Governor(max_concurrent_queries=4).aggregate_memory_limit is None

    def test_oversized_reservation_is_shed(self):
        governor = Governor(
            max_concurrent_queries=4, memory_budget_bytes=100, max_queue_depth=0
        )
        with governor.admit(reserve_bytes=300):
            # 300 + 200 > 400: second query cannot reserve and the queue is
            # zero-depth, so it sheds instead of waiting.
            with pytest.raises(AdmissionRejectedError):
                with governor.admit(reserve_bytes=200):
                    pass
            with governor.admit(reserve_bytes=100):
                pass  # exactly at the ceiling is admissible

    def test_default_reservation_is_the_per_query_budget(self):
        governor = Governor(
            max_concurrent_queries=2, memory_budget_bytes=100, max_queue_depth=0
        )
        with governor.admit():
            with governor.admit():
                assert governor.active_queries == 2


class TestFromConfig:
    def test_reads_the_cluster_config_fields(self):
        config = ClusterConfig(max_concurrent_queries=3, memory_budget_bytes=2048)
        governor = Governor.from_config(config)
        assert governor.max_concurrent_queries == 3
        assert governor.memory_budget_bytes == 2048

    def test_engine_facade_gates_queries_through_its_governor(self):
        from repro.core.prost import ProstEngine
        from repro.rdf.graph import Graph

        engine = ProstEngine(
            num_workers=2,
            cluster_config=ClusterConfig(num_workers=2, max_concurrent_queries=2),
        )
        engine.load(Graph.from_ntriples("<http://x/a> <http://x/p> <http://x/b> ."))
        engine.sparql("SELECT ?s WHERE { ?s <http://x/p> ?o }")
        assert engine.governor.admitted == 1
        assert engine.governor.active_queries == 0
