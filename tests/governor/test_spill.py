"""The grace-hash spill kernel: exact equivalence with the in-memory join.

The spilled join must be *invisible*: identical rows in identical order to
``executor._hash_join_partition`` for every join type, every fanout, and
adversarial inputs (NULL keys, duplicate keys, empty sides). Bucket files
must also be deterministic — byte-identical across reruns of the same
inputs — which is what makes governed chaos runs replayable.
"""

import os
import random

import pytest

from repro.engine import ExecutionMetrics
from repro.engine.executor import _hash_join_partition
from repro.governor import SpillStore, grace_hash_join_partition
from repro.governor.spill import bucket_of


def _store(tmp_path, metrics=None):
    os.makedirs(str(tmp_path), exist_ok=True)
    return SpillStore(str(tmp_path), metrics or ExecutionMetrics())


def _random_rows(rng, count, width, key_cardinality, null_rate=0.15):
    rows = []
    for _ in range(count):
        row = []
        for column in range(width):
            if rng.random() < null_rate:
                row.append(None)
            else:
                row.append(f"c{column}-v{rng.randrange(key_cardinality)}")
        rows.append(tuple(row))
    return rows


HOWS = ("inner", "left", "semi", "anti")


class TestEquivalence:
    @pytest.mark.parametrize("how", HOWS)
    @pytest.mark.parametrize("seed", range(8))
    def test_single_key_matches_in_memory_kernel(self, tmp_path, how, seed):
        rng = random.Random(seed)
        left = _random_rows(rng, rng.randrange(0, 40), 3, 5)
        right = _random_rows(rng, rng.randrange(0, 40), 2, 5)
        expected = _hash_join_partition(left, right, [1], [0], [1], how)
        for fanout in (2, 4, 16):
            actual = grace_hash_join_partition(
                left, right, [1], [0], [1], how, fanout,
                _store(tmp_path / f"{how}-{seed}-{fanout}"),
            )
            assert actual == expected, f"fanout={fanout}"

    @pytest.mark.parametrize("how", HOWS)
    @pytest.mark.parametrize("seed", range(4))
    def test_multi_key_matches_in_memory_kernel(self, tmp_path, how, seed):
        rng = random.Random(1000 + seed)
        left = _random_rows(rng, rng.randrange(0, 30), 4, 3)
        right = _random_rows(rng, rng.randrange(0, 30), 3, 3)
        expected = _hash_join_partition(left, right, [0, 2], [0, 1], [2], how)
        actual = grace_hash_join_partition(
            left, right, [0, 2], [0, 1], [2], how, 4,
            _store(tmp_path / f"{how}-{seed}"),
        )
        assert actual == expected

    def test_empty_sides(self, tmp_path):
        rows = [("a", "b"), ("c", "d")]
        assert grace_hash_join_partition(
            [], rows, [0], [0], [1], "inner", 2, _store(tmp_path / "l")
        ) == []
        assert grace_hash_join_partition(
            rows, [], [0], [0], [1], "left", 2, _store(tmp_path / "r")
        ) == [("a", "b", None), ("c", "d", None)]

    def test_unsupported_join_type_rejected(self, tmp_path):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="unsupported join type"):
            grace_hash_join_partition(
                [("a",)], [("a",)], [0], [0], [], "full", 2, _store(tmp_path)
            )


class TestBuckets:
    def test_equal_keys_share_a_bucket(self):
        for fanout in (2, 8, 64):
            assert bucket_of(("k",), fanout) == bucket_of(("k",), fanout)

    def test_bucketing_is_decorrelated_from_the_shuffle_partitioner(self):
        # A shuffled partition holds keys congruent mod the partition count;
        # grace-hash buckets must still spread them, or every spilled row
        # would land in one bucket and the spill would degenerate.
        from repro.engine import stable_hash

        partitions = 4
        keys = [(f"key-{i}",) for i in range(400)]
        congruent = [k for k in keys if stable_hash(k) % partitions == 0]
        assert len(congruent) > 20
        buckets = {bucket_of(k, partitions) for k in congruent}
        assert len(buckets) == partitions

    def test_bucket_files_are_deterministic_across_reruns(self, tmp_path):
        rng = random.Random(7)
        left = _random_rows(rng, 30, 3, 4)
        right = _random_rows(rng, 30, 2, 4)
        contents = []
        for run in ("first", "second"):
            store = _store(tmp_path / run)
            grace_hash_join_partition(left, right, [0], [0], [1], "inner", 4, store)
            contents.append(
                [
                    (path.rsplit("/", 1)[-1], open(path, "rb").read())
                    for path in store.paths
                ]
            )
        assert contents[0] == contents[1]

    def test_writes_one_left_and_one_right_file_per_bucket(self, tmp_path):
        store = _store(tmp_path)
        grace_hash_join_partition(
            [("a", 1)], [("a", 2)], [0], [0], [1], "inner", 4, store
        )
        assert len(store.paths) == 8  # 4 buckets × 2 sides


class TestAccounting:
    def test_spill_bytes_use_the_engine_row_estimate(self, tmp_path):
        from repro.engine import estimate_row_bytes

        metrics = ExecutionMetrics()
        left = [("abc", "defg")]
        right = [("abc", "x")]
        grace_hash_join_partition(
            left, right, [0], [0], [1], "inner", 2, _store(tmp_path, metrics)
        )
        expected = sum(estimate_row_bytes(r) for r in left + right)
        assert metrics.spill_bytes == expected
