"""Governed mode parity: the budget walks both paths down the same ladder.

The strict-equivalence contract of ``engine/vectorized.py`` extends to
governance: because both paths charge the budget with the same
``estimate_row_bytes`` contract, a given budget must produce identical
rows AND identical governor counters (spills, spill bytes/partitions,
degraded joins) under ``REPRO_VECTORIZE=1`` and ``=0``.
"""

import pytest

from repro.engine.cluster import ClusterConfig
from repro.testing import DifferentialRunner
from repro.testing.differential import make_system, row_key
from repro.vector import vectorized

SEEDS = tuple(range(10))
QUERIES_PER_GRAPH = 5

GOVERNOR_COUNTERS = (
    "budget_trips",
    "spills",
    "spill_partitions",
    "spill_bytes",
    "degraded_joins",
    "peak_memory_bytes",
)


def _run_mode(enabled, graph, queries, budget):
    with vectorized(enabled):
        config = ClusterConfig(memory_budget_bytes=budget)
        system = make_system("prost-mixed", cluster_config=config)
        system.load(graph)
        results = [
            sorted(row_key(row) for row in system.sparql(query).rows)
            for query in queries
        ]
        metrics = system.session.cluster.session_metrics
        counters = {name: getattr(metrics, name) for name in GOVERNOR_COUNTERS}
        return results, counters


@pytest.mark.parametrize("seed", SEEDS)
def test_budgeted_execution_is_mode_invariant(seed):
    runner = DifferentialRunner(queries_per_graph=QUERIES_PER_GRAPH)
    graph, queries = runner.generate_case(seed)
    budget = 512  # small enough that fuzz-scale joins trip it
    vec_rows, vec_counters = _run_mode(True, graph, queries, budget)
    row_rows, row_counters = _run_mode(False, graph, queries, budget)
    assert vec_rows == row_rows, f"seed {seed}: governed rows diverge"
    assert vec_counters == row_counters, (
        f"seed {seed}: governor counters diverge:\n"
        f"  vectorized: {vec_counters}\n  row path:   {row_counters}"
    )


def test_the_parity_corpus_actually_exercises_the_governor():
    """Guard against the budget being too generous to ever trip."""
    total_spills = 0
    total_degraded = 0
    for seed in SEEDS:
        runner = DifferentialRunner(queries_per_graph=QUERIES_PER_GRAPH)
        graph, queries = runner.generate_case(seed)
        _, counters = _run_mode(True, graph, queries, 512)
        total_spills += counters["spills"]
        total_degraded += counters["degraded_joins"]
    assert total_spills > 0
    assert total_degraded > 0
