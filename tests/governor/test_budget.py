"""MemoryBudget: charging, pressure shrinks, and spill-fanout sizing."""

import pytest

from repro.errors import ValidationError
from repro.governor import MAX_SPILL_FANOUT, MIN_SPILL_FANOUT, MemoryBudget


class TestValidation:
    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValidationError):
            MemoryBudget(0)
        with pytest.raises(ValidationError):
            MemoryBudget(-10)


class TestCharging:
    def test_charge_under_budget_does_not_trip(self):
        budget = MemoryBudget(100)
        assert budget.charge(100) is False
        assert budget.charge(1) is False

    def test_charge_over_budget_trips(self):
        budget = MemoryBudget(100)
        assert budget.charge(101) is True

    def test_charges_are_per_site_not_cumulative(self):
        # Operator working sets are transient, so sites are charged
        # independently: two 60-byte builds under a 100-byte budget both fit.
        budget = MemoryBudget(100)
        assert budget.charge(60) is False
        assert budget.charge(60) is False

    def test_peak_is_the_largest_single_charge(self):
        budget = MemoryBudget(100)
        budget.charge(10)
        budget.charge(70)
        budget.charge(30)
        assert budget.peak_bytes == 70

    def test_would_trip_leaves_peak_untouched(self):
        budget = MemoryBudget(100)
        assert budget.would_trip(500) is True
        assert budget.would_trip(50) is False
        assert budget.peak_bytes == 0


class TestPressure:
    def test_shrink_reduces_effective_budget(self):
        budget = MemoryBudget(1000)
        assert budget.shrink(0.5) == 500
        assert budget.effective_bytes == 500
        assert budget.limit_bytes == 1000  # configured limit unchanged

    def test_shrink_fraction_is_of_the_configured_limit(self):
        budget = MemoryBudget(1000)
        budget.shrink(0.25)
        budget.shrink(0.25)
        assert budget.effective_bytes == 500

    def test_shrink_floors_at_one_byte(self):
        budget = MemoryBudget(100)
        budget.shrink(1.0)
        budget.shrink(1.0)
        assert budget.effective_bytes == 1

    def test_shrink_changes_trip_decisions(self):
        budget = MemoryBudget(1000)
        assert budget.would_trip(600) is False
        budget.shrink(0.5)
        assert budget.would_trip(600) is True


class TestSpillFanout:
    def test_minimum_fanout(self):
        budget = MemoryBudget(1000)
        assert budget.spill_fanout(1001) == MIN_SPILL_FANOUT

    def test_fanout_is_a_power_of_two_covering_the_overflow(self):
        budget = MemoryBudget(100)
        assert budget.spill_fanout(350) == 4  # ceil(350/100)=4
        assert budget.spill_fanout(500) == 8  # ceil=5 → next power of two

    def test_fanout_clamped_at_max(self):
        budget = MemoryBudget(1)
        assert budget.spill_fanout(10**9) == MAX_SPILL_FANOUT

    def test_fanout_is_deterministic(self):
        budget = MemoryBudget(64)
        assert budget.spill_fanout(1000) == budget.spill_fanout(1000)
