"""Statistics collector tests: the paper's two statistics plus extensions."""

import pytest

from repro.rdf import Graph, collect_statistics


GRAPH = Graph.from_ntriples(
    """
<http://ex/a> <http://ex/likes> <http://ex/x> .
<http://ex/a> <http://ex/likes> <http://ex/y> .
<http://ex/b> <http://ex/likes> <http://ex/x> .
<http://ex/a> <http://ex/name> "A" .
<http://ex/b> <http://ex/name> "B" .
<http://ex/c> <http://ex/age> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .
"""
)


class TestSimpleStatistics:
    def setup_method(self):
        self.stats = collect_statistics(GRAPH)

    def test_totals(self):
        assert self.stats.total_triples == 6
        assert self.stats.total_subjects == 3

    def test_triple_count_per_predicate(self):
        assert self.stats.for_predicate("http://ex/likes").triple_count == 3
        assert self.stats.for_predicate("http://ex/name").triple_count == 2

    def test_distinct_subjects_per_predicate(self):
        assert self.stats.for_predicate("http://ex/likes").distinct_subjects == 2

    def test_distinct_objects_per_predicate(self):
        assert self.stats.for_predicate("http://ex/likes").distinct_objects == 2

    def test_multivalued_detection(self):
        assert self.stats.for_predicate("http://ex/likes").is_multivalued
        assert not self.stats.for_predicate("http://ex/name").is_multivalued

    def test_unknown_predicate_gets_empty_stats(self):
        stats = self.stats.for_predicate("http://ex/zzz")
        assert stats.triple_count == 0
        assert not stats.is_multivalued

    def test_objects_per_subject(self):
        assert self.stats.for_predicate("http://ex/likes").objects_per_subject == 1.5

    def test_characteristic_sets_absent_at_simple_level(self):
        assert self.stats.characteristic_sets is None
        assert self.stats.star_subject_estimate({"http://ex/likes"}) is None


class TestExtendedStatistics:
    def setup_method(self):
        self.stats = collect_statistics(GRAPH, level="extended")

    def test_characteristic_sets_counted(self):
        sets = self.stats.characteristic_sets
        assert sets[frozenset({"http://ex/likes", "http://ex/name"})] == 2
        assert sets[frozenset({"http://ex/age"})] == 1

    def test_star_subject_estimate_sums_supersets(self):
        assert self.stats.star_subject_estimate({"http://ex/likes"}) == 2
        assert self.stats.star_subject_estimate(
            {"http://ex/likes", "http://ex/name"}
        ) == 2
        assert self.stats.star_subject_estimate({"http://ex/age"}) == 1
        assert self.stats.star_subject_estimate(
            {"http://ex/age", "http://ex/likes"}
        ) == 0


def test_unknown_level_rejected():
    with pytest.raises(ValueError):
        collect_statistics(GRAPH, level="fancy")


def test_empty_graph_statistics():
    stats = collect_statistics(Graph())
    assert stats.total_triples == 0
    assert stats.predicates == {}
