"""Unit tests for RDF terms: construction, serialization, ordering."""

import pytest

from repro.rdf.terms import (
    IRI,
    BlankNode,
    Literal,
    Triple,
    escape_literal,
    term_sort_key,
    unescape_literal,
)


class TestIri:
    def test_n3_wraps_in_angle_brackets(self):
        assert IRI("http://ex/a").n3() == "<http://ex/a>"

    def test_str_is_raw_value(self):
        assert str(IRI("http://ex/a")) == "http://ex/a"

    def test_equality_and_hash(self):
        assert IRI("http://ex/a") == IRI("http://ex/a")
        assert hash(IRI("http://ex/a")) == hash(IRI("http://ex/a"))
        assert IRI("http://ex/a") != IRI("http://ex/b")


class TestBlankNode:
    def test_n3(self):
        assert BlankNode("b0").n3() == "_:b0"

    def test_str(self):
        assert str(BlankNode("b0")) == "_:b0"


class TestLiteral:
    def test_plain_literal_n3(self):
        assert Literal("hi").n3() == '"hi"'

    def test_language_tag_n3(self):
        assert Literal("hi", language="en").n3() == '"hi"@en'

    def test_datatype_n3(self):
        lit = Literal("5", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert lit.n3() == '"5"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_xsd_string_datatype_is_implicit(self):
        lit = Literal("hi", datatype="http://www.w3.org/2001/XMLSchema#string")
        assert lit.n3() == '"hi"'

    def test_language_and_datatype_rejected(self):
        with pytest.raises(ValueError):
            Literal("hi", datatype="http://ex/dt", language="en")

    def test_escapes_in_n3(self):
        assert Literal('a"b\nc\\d').n3() == '"a\\"b\\nc\\\\d"'

    def test_to_python_integer(self):
        lit = Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert lit.to_python() == 42

    def test_to_python_decimal(self):
        lit = Literal("4.5", datatype="http://www.w3.org/2001/XMLSchema#decimal")
        assert lit.to_python() == 4.5

    def test_to_python_boolean(self):
        lit = Literal("true", datatype="http://www.w3.org/2001/XMLSchema#boolean")
        assert lit.to_python() is True
        lit = Literal("false", datatype="http://www.w3.org/2001/XMLSchema#boolean")
        assert lit.to_python() is False

    def test_to_python_bad_lexical_falls_back(self):
        lit = Literal("zap", datatype="http://www.w3.org/2001/XMLSchema#integer")
        assert lit.to_python() == "zap"

    def test_to_python_plain(self):
        assert Literal("hi").to_python() == "hi"


class TestEscaping:
    def test_round_trip_common_escapes(self):
        raw = 'tab\t newline\n quote" backslash\\ cr\r'
        assert unescape_literal(escape_literal(raw)) == raw

    def test_unicode_escapes(self):
        assert unescape_literal("\\u0041") == "A"
        assert unescape_literal("\\U0001F600") == "\U0001f600"

    def test_dangling_backslash_rejected(self):
        with pytest.raises(ValueError):
            unescape_literal("abc\\")

    def test_unknown_escape_rejected(self):
        with pytest.raises(ValueError):
            unescape_literal("\\q")


class TestTriple:
    def test_n3_line(self):
        triple = Triple(IRI("http://ex/s"), IRI("http://ex/p"), Literal("o"))
        assert triple.n3() == '<http://ex/s> <http://ex/p> "o" .'

    def test_unpacking(self):
        triple = Triple(IRI("http://ex/s"), IRI("http://ex/p"), IRI("http://ex/o"))
        s, p, o = triple
        assert (s, p, o) == (triple.subject, triple.predicate, triple.object)


class TestSortKey:
    def test_kind_ordering_iri_bnode_literal(self):
        iri = term_sort_key(IRI("http://ex/a"))
        bnode = term_sort_key(BlankNode("b"))
        literal = term_sort_key(Literal("a"))
        assert iri < bnode < literal

    def test_within_kind_sorts_by_value(self):
        assert term_sort_key(IRI("http://ex/a")) < term_sort_key(IRI("http://ex/b"))
