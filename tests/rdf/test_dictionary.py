"""Term dictionary tests: dense IDs, memoized decode, and round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.dictionary import (
    TERM_ID_BASE,
    TermDictionary,
    default_dictionary,
    ids_enabled,
    is_term_id,
    set_ids_enabled,
    storage_cell,
    storage_row,
    term_ids,
)
from repro.rdf.terms import IRI, BlankNode, Literal, XSD_INTEGER


class TestTermDictionary:
    def test_ids_are_dense_and_stable(self):
        d = TermDictionary()
        a = d.intern_text("<http://ex/a>")
        b = d.intern_text("<http://ex/b>")
        assert (a, b) == (TERM_ID_BASE, TERM_ID_BASE + 1)
        assert d.intern_text("<http://ex/a>") == a
        assert len(d) == 2

    def test_ids_are_range_tagged_plain_ints(self):
        """IDs must be *plain* ints above the base: an ``int`` subclass
        would be GC-tracked and defeat tuple untracking (see module docs),
        and a sub-base value would be mistaken for a COUNT."""
        term_id = TermDictionary().intern_text("<http://ex/a>")
        assert type(term_id) is int
        assert is_term_id(term_id)
        assert not is_term_id(7)
        assert not is_term_id("<http://ex/a>")
        assert not is_term_id(True)

    def test_text_round_trip(self):
        d = TermDictionary()
        term_id = d.intern_text('"hello"@en')
        assert d.text_of(term_id) == '"hello"@en'

    def test_term_is_parsed_once_and_memoized(self):
        d = TermDictionary()
        term_id = d.intern_term(IRI("http://ex/a"))
        first = d.term_of(term_id)
        assert first == IRI("http://ex/a")
        assert d.term_of(term_id) is first

    def test_lookup_misses_return_none(self):
        d = TermDictionary()
        assert d.lookup("<http://ex/never-interned>") is None

    def test_decoded_bytes_matches_text_length(self):
        d = TermDictionary()
        text = "<http://ex/some-longer-iri>"
        assert d.decoded_bytes(d.intern_text(text)) == len(text)

    def test_clear_resets_id_space(self):
        d = TermDictionary()
        d.intern_text("<http://ex/a>")
        d.clear()
        assert len(d) == 0
        assert d.intern_text("<http://ex/b>") == TERM_ID_BASE

    def test_term_for_text_interns(self):
        d = TermDictionary()
        term = d.term_for_text("<http://ex/via-text>")
        assert term == IRI("http://ex/via-text")
        assert d.lookup("<http://ex/via-text>") is not None


class TestModeSwitch:
    def test_default_is_ids_on(self):
        assert ids_enabled()

    def test_set_returns_previous(self):
        previous = set_ids_enabled(False)
        try:
            assert previous is True
            assert not ids_enabled()
        finally:
            set_ids_enabled(previous)

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with term_ids(False):
                assert not ids_enabled()
                raise RuntimeError("boom")
        assert ids_enabled()


class TestStorageBoundary:
    def test_term_ids_decode_to_lexical_text(self):
        term_id = default_dictionary().intern_text("<http://ex/stored>")
        assert storage_cell(term_id) == "<http://ex/stored>"

    def test_lists_decode_elementwise(self):
        d = default_dictionary()
        ids = [d.intern_text("<http://ex/l1>"), d.intern_text("<http://ex/l2>")]
        assert storage_cell(ids) == ["<http://ex/l1>", "<http://ex/l2>"]

    def test_non_id_cells_pass_through(self):
        row = ("<http://ex/raw>", None, 7, 1.5)
        assert storage_row(row) == row


# Term generators for the round-trip property tests: full unicode (including
# lone surrogates, i.e. surrogate-escaped raw bytes), numeric literals,
# blank nodes, and IRIs.
_unicode_text = st.text(
    alphabet=st.characters(min_codepoint=0, max_codepoint=0x10FFFF),
    max_size=20,
)
_surrogate_text = st.text(
    alphabet=st.characters(min_codepoint=0xDC00, max_codepoint=0xDCFF),
    min_size=1,
    max_size=8,
)
_numeric_literals = st.integers(-(10**9), 10**9).map(
    lambda n: Literal(str(n), datatype=XSD_INTEGER)
) | st.floats(allow_nan=False, allow_infinity=False).map(
    lambda x: Literal(repr(x), datatype="http://www.w3.org/2001/XMLSchema#double")
)
_dictionary_terms = (
    st.from_regex(r"[a-z0-9/._~%-]{1,16}", fullmatch=True).map(
        lambda s: IRI("http://ex/" + s)
    )
    | st.builds(Literal, _unicode_text)
    | st.builds(Literal, _surrogate_text)
    | st.builds(
        Literal,
        st.text(max_size=10),
        language=st.from_regex(r"[a-z]{2}(-[a-z0-9]{1,4})?", fullmatch=True),
    )
    | _numeric_literals
    | st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,10}", fullmatch=True).map(BlankNode)
)


@given(_dictionary_terms)
@settings(max_examples=200, deadline=None)
def test_property_dictionary_round_trip(term):
    """intern → decode is the identity for every representable term."""
    d = default_dictionary()
    term_id = d.intern_term(term)
    assert d.term_of(term_id) == term
    assert d.text_of(term_id) == term.n3()


@given(st.lists(_dictionary_terms, min_size=1, max_size=10))
@settings(max_examples=100, deadline=None)
def test_property_interning_is_injective(terms):
    """Distinct terms get distinct IDs; equal terms share one ID."""
    d = TermDictionary()
    ids = [d.intern_term(t) for t in terms]
    by_term = {}
    for term, term_id in zip(terms, ids):
        by_term.setdefault(term.n3(), set()).add(term_id)
    assert all(len(assigned) == 1 for assigned in by_term.values())
    assert len(set(ids)) == len(by_term)
