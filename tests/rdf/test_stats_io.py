"""Statistics persistence tests: JSON round trips and HDFS storage."""

import pytest

from repro.hdfs import SimulatedHdfs
from repro.rdf import Graph, collect_statistics
from repro.rdf.stats_io import (
    load_statistics,
    save_statistics,
    statistics_from_json,
    statistics_to_json,
)

NT = """
<http://ex/a> <http://ex/likes> <http://ex/x> .
<http://ex/a> <http://ex/likes> <http://ex/y> .
<http://ex/b> <http://ex/name> "B" .
"""


@pytest.fixture
def graph():
    return Graph.from_ntriples(NT)


class TestJsonRoundTrip:
    def test_simple_statistics_round_trip(self, graph):
        stats = collect_statistics(graph)
        again = statistics_from_json(statistics_to_json(stats))
        assert again.total_triples == stats.total_triples
        assert again.total_subjects == stats.total_subjects
        assert again.predicates == stats.predicates
        assert again.characteristic_sets is None

    def test_extended_statistics_round_trip(self, graph):
        stats = collect_statistics(graph, level="extended")
        again = statistics_from_json(statistics_to_json(stats))
        assert again.characteristic_sets == stats.characteristic_sets

    def test_serialization_is_deterministic(self, graph):
        stats = collect_statistics(graph, level="extended")
        assert statistics_to_json(stats) == statistics_to_json(stats)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            statistics_from_json('{"version": 999}')


class TestHdfsStorage:
    def test_save_and_load(self, graph):
        hdfs = SimulatedHdfs(num_datanodes=2)
        stats = collect_statistics(graph)
        save_statistics(hdfs, "/stats.json", stats)
        assert load_statistics(hdfs, "/stats.json").predicates == stats.predicates

    def test_save_overwrites(self, graph):
        hdfs = SimulatedHdfs(num_datanodes=2)
        stats = collect_statistics(graph)
        save_statistics(hdfs, "/stats.json", stats)
        save_statistics(hdfs, "/stats.json", stats)  # no FileAlreadyExists
        assert hdfs.exists("/stats.json")

    def test_prost_loader_persists_statistics(self, graph):
        from repro.core import ProstEngine

        engine = ProstEngine()
        engine.load(graph)
        saved = load_statistics(engine.session.hdfs, "/prost/statistics.json")
        assert saved.total_triples == len(graph)
