"""Graph iteration order must not depend on Python's hash randomization.

``Graph`` stores triples in dicts (insertion-ordered) rather than sets
precisely so that every load pipeline sees the same triple sequence in every
process. These tests pin that: in-process the order is the insertion order,
and across processes with different ``PYTHONHASHSEED`` values the full
fuzz-pipeline output is byte-identical.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.rdf import Graph
from repro.rdf.terms import IRI, Triple


def test_iteration_follows_insertion_order():
    triples = [
        Triple(IRI(f"http://ex/s{i}"), IRI(f"http://ex/p{i % 3}"), IRI(f"http://ex/o{i}"))
        for i in range(25)
    ]
    graph = Graph(triples)
    assert list(graph) == triples


_PROBE = """
import random
from repro.testing import DifferentialRunner, serialize_query
from repro.testing.oracle import BruteForceOracle

runner = DifferentialRunner(queries_per_graph=4)
graph, queries = runner.generate_case(7)
print(graph.to_ntriples())
for triple in graph:  # raw iteration order, not the sorted serialization
    print(triple.subject.n3(), triple.predicate.n3(), triple.object.n3())
oracle = BruteForceOracle(graph)
for query in queries:
    print(serialize_query(query))
    for row in oracle.evaluate(query):
        print([None if t is None else t.n3() for t in row])
"""


def _run_probe(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = str(src)
    result = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout


def test_pipeline_output_is_hash_seed_independent():
    assert _run_probe("1") == _run_probe("424242")
