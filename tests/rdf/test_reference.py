"""Reference evaluator tests: BGP matching, filters, solution modifiers."""

from repro.rdf import IRI, Literal
from repro.rdf.reference import ReferenceEvaluator
from repro.sparql import parse_sparql


def evaluate(graph_evaluator, query: str):
    return graph_evaluator.evaluate(parse_sparql(query))


class TestBgpMatching:
    def test_single_pattern(self, social_reference):
        rows = evaluate(
            social_reference, "SELECT ?n WHERE { <http://ex/alice> <http://ex/name> ?n }"
        )
        assert rows == [(Literal("Alice"),)]

    def test_chain_join(self, social_reference):
        rows = evaluate(
            social_reference,
            "SELECT ?x ?c WHERE { ?x <http://ex/city> ?ci . ?ci <http://ex/country> ?c }",
        )
        assert (IRI("http://ex/alice"), IRI("http://ex/germany")) in rows
        assert len(rows) == 3

    def test_star_join(self, social_reference):
        rows = evaluate(
            social_reference,
            'SELECT ?x WHERE { ?x <http://ex/tag> "x" . ?x <http://ex/age> ?a }',
        )
        assert {row[0] for row in rows} == {IRI("http://ex/alice"), IRI("http://ex/bob")}

    def test_variable_predicate(self, social_reference):
        rows = evaluate(
            social_reference, "SELECT ?p WHERE { <http://ex/berlin> ?p ?o }"
        )
        assert rows == [(IRI("http://ex/country"),)]

    def test_repeated_variable_in_pattern(self, social_reference):
        rows = evaluate(social_reference, "SELECT ?x WHERE { ?x <http://ex/knows> ?x }")
        assert rows == []

    def test_no_match_returns_empty(self, social_reference):
        rows = evaluate(
            social_reference, "SELECT ?x WHERE { ?x <http://ex/missing> ?y }"
        )
        assert rows == []

    def test_cartesian_when_disconnected(self, social_reference):
        rows = evaluate(
            social_reference,
            "SELECT ?a ?b WHERE { ?a <http://ex/country> ?x . ?b <http://ex/country> ?y }",
        )
        assert len(rows) == 4  # 2 cities × 2 cities


class TestFilters:
    def test_numeric_comparison(self, social_reference):
        rows = evaluate(
            social_reference,
            "SELECT ?x WHERE { ?x <http://ex/age> ?a . FILTER(?a >= 30) }",
        )
        assert {row[0] for row in rows} == {IRI("http://ex/alice"), IRI("http://ex/carol")}

    def test_string_inequality(self, social_reference):
        rows = evaluate(
            social_reference,
            'SELECT ?n WHERE { ?x <http://ex/name> ?n . FILTER(?n != "Bob") }',
        )
        assert Literal("Bob") not in {row[0] for row in rows}
        assert len(rows) == 3

    def test_regex(self, social_reference):
        rows = evaluate(
            social_reference,
            'SELECT ?n WHERE { ?x <http://ex/name> ?n . FILTER regex(?n, "^[AC]") }',
        )
        assert {row[0].lexical for row in rows} == {"Alice", "Carol"}

    def test_conjunction_and_disjunction(self, social_reference):
        rows = evaluate(
            social_reference,
            "SELECT ?x WHERE { ?x <http://ex/age> ?a . FILTER(?a > 20 && ?a < 31) }",
        )
        assert len(rows) == 2
        rows = evaluate(
            social_reference,
            "SELECT ?x WHERE { ?x <http://ex/age> ?a . FILTER(?a = 25 || ?a = 35) }",
        )
        assert len(rows) == 2

    def test_iri_equality_filter(self, social_reference):
        rows = evaluate(
            social_reference,
            "SELECT ?x WHERE { ?x <http://ex/city> ?c . FILTER(?c = <http://ex/paris>) }",
        )
        assert rows == [(IRI("http://ex/carol"),)]

    def test_uncomparable_pair_eliminates_solution(self, social_reference):
        rows = evaluate(
            social_reference,
            "SELECT ?x WHERE { ?x <http://ex/city> ?c . FILTER(?c > 5) }",
        )
        assert rows == []


class TestModifiers:
    def test_distinct(self, social_reference):
        plain = evaluate(social_reference, "SELECT ?y WHERE { ?x <http://ex/knows> ?y }")
        distinct = evaluate(
            social_reference, "SELECT DISTINCT ?y WHERE { ?x <http://ex/knows> ?y }"
        )
        assert len(plain) == 4
        assert len(distinct) == 3

    def test_order_by_descending(self, social_reference):
        rows = evaluate(
            social_reference,
            "SELECT ?n WHERE { ?x <http://ex/name> ?n } ORDER BY DESC(?n)",
        )
        names = [row[0].lexical for row in rows]
        assert names == sorted(names, reverse=True)

    def test_limit_offset(self, social_reference):
        all_rows = evaluate(social_reference, "SELECT ?n WHERE { ?x <http://ex/name> ?n }")
        sliced = evaluate(
            social_reference,
            "SELECT ?n WHERE { ?x <http://ex/name> ?n } LIMIT 2 OFFSET 1",
        )
        assert sliced == all_rows[1:3]

    def test_count_helper(self, social_reference):
        assert social_reference.count(
            parse_sparql("SELECT ?x WHERE { ?x <http://ex/name> ?n }")
        ) == 4
