"""N-Triples parser/serializer tests, including property-based round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RdfSyntaxError
from repro.rdf.ntriples import (
    parse_line,
    parse_ntriples_string,
    parse_term,
    serialize_ntriples,
)
from repro.rdf.terms import IRI, BlankNode, Literal, Triple


class TestParseLine:
    def test_simple_triple(self):
        triple = parse_line("<http://ex/s> <http://ex/p> <http://ex/o> .")
        assert triple == Triple(IRI("http://ex/s"), IRI("http://ex/p"), IRI("http://ex/o"))

    def test_literal_object(self):
        triple = parse_line('<http://ex/s> <http://ex/p> "hi" .')
        assert triple.object == Literal("hi")

    def test_typed_literal(self):
        triple = parse_line(
            '<http://ex/s> <http://ex/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert triple.object.datatype.endswith("integer")

    def test_language_tagged_literal(self):
        triple = parse_line('<http://ex/s> <http://ex/p> "hallo"@de-DE .')
        assert triple.object.language == "de-DE"

    def test_blank_nodes(self):
        triple = parse_line("_:a <http://ex/p> _:b .")
        assert triple.subject == BlankNode("a")
        assert triple.object == BlankNode("b")

    def test_comment_line_is_skipped(self):
        assert parse_line("# a comment") is None

    def test_blank_line_is_skipped(self):
        assert parse_line("   ") is None

    def test_trailing_comment_allowed(self):
        triple = parse_line("<http://ex/s> <http://ex/p> <http://ex/o> . # note")
        assert triple is not None

    def test_missing_dot_rejected(self):
        with pytest.raises(RdfSyntaxError):
            parse_line("<http://ex/s> <http://ex/p> <http://ex/o>")

    def test_literal_subject_rejected(self):
        with pytest.raises(RdfSyntaxError):
            parse_line('"s" <http://ex/p> <http://ex/o> .')

    def test_literal_predicate_rejected(self):
        with pytest.raises(RdfSyntaxError):
            parse_line('<http://ex/s> "p" <http://ex/o> .')

    def test_blank_node_predicate_rejected(self):
        with pytest.raises(RdfSyntaxError):
            parse_line("<http://ex/s> _:p <http://ex/o> .")

    def test_error_carries_line_number(self):
        with pytest.raises(RdfSyntaxError) as excinfo:
            list(parse_ntriples_string("<http://ex/s> <http://ex/p> bad ."))
        assert "line 1" in str(excinfo.value)

    def test_escaped_quotes_in_literal(self):
        triple = parse_line('<http://ex/s> <http://ex/p> "say \\"hi\\"" .')
        assert triple.object.lexical == 'say "hi"'


class TestParseTerm:
    def test_iri(self):
        assert parse_term("<http://ex/a>") == IRI("http://ex/a")

    def test_literal_with_datatype(self):
        term = parse_term('"5"^^<http://www.w3.org/2001/XMLSchema#integer>')
        assert isinstance(term, Literal)
        assert term.to_python() == 5

    def test_bnode(self):
        assert parse_term("_:x") == BlankNode("x")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(RdfSyntaxError):
            parse_term("<http://ex/a> junk")


class TestRoundTrip:
    def test_document_round_trip(self):
        document = (
            '<http://ex/s> <http://ex/p> "a\\nb" .\n'
            "<http://ex/s> <http://ex/q> _:b1 .\n"
        )
        triples = parse_ntriples_string(document)
        assert serialize_ntriples(triples) == document


_iris = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=12
).map(lambda s: IRI("http://ex/" + s))
_literals = st.builds(
    Literal,
    st.text(max_size=20),
    datatype=st.none() | st.just("http://www.w3.org/2001/XMLSchema#integer"),
)
_bnodes = st.from_regex(r"[A-Za-z0-9][A-Za-z0-9_]{0,8}", fullmatch=True).map(BlankNode)
_subjects = _iris | _bnodes
_objects = _iris | _bnodes | _literals


@given(st.lists(st.builds(Triple, _subjects, _iris, _objects), max_size=25))
@settings(max_examples=50, deadline=None)
def test_property_serialization_round_trips(triples):
    """serialize → parse is the identity on any list of triples."""
    assert parse_ntriples_string(serialize_ntriples(triples)) == triples


@given(_objects)
@settings(max_examples=100, deadline=None)
def test_property_term_round_trips(term):
    """n3 → parse_term is the identity on any single term."""
    assert parse_term(term.n3()) == term
