"""Graph container tests: set semantics, grouped views, serialization."""

from repro.rdf import Graph, IRI, Literal, Triple


def _triple(s: str, p: str, o: str) -> Triple:
    return Triple(IRI(s), IRI(p), IRI(o))


class TestConstruction:
    def test_duplicates_are_deduplicated(self):
        t = _triple("http://ex/a", "http://ex/p", "http://ex/b")
        graph = Graph([t, t, t])
        assert len(graph) == 1

    def test_add_reports_novelty(self):
        graph = Graph()
        t = _triple("http://ex/a", "http://ex/p", "http://ex/b")
        assert graph.add(t) is True
        assert graph.add(t) is False

    def test_update_counts_new_triples(self):
        graph = Graph()
        t1 = _triple("http://ex/a", "http://ex/p", "http://ex/b")
        t2 = _triple("http://ex/a", "http://ex/p", "http://ex/c")
        assert graph.update([t1, t2, t1]) == 2

    def test_contains(self):
        t = _triple("http://ex/a", "http://ex/p", "http://ex/b")
        graph = Graph([t])
        assert t in graph
        assert _triple("http://ex/x", "http://ex/p", "http://ex/b") not in graph


class TestViews:
    def setup_method(self):
        self.graph = Graph(
            [
                _triple("http://ex/a", "http://ex/p", "http://ex/b"),
                _triple("http://ex/a", "http://ex/p", "http://ex/c"),
                _triple("http://ex/a", "http://ex/q", "http://ex/d"),
                _triple("http://ex/b", "http://ex/p", "http://ex/c"),
            ]
        )

    def test_predicates_sorted(self):
        assert self.graph.predicates == [IRI("http://ex/p"), IRI("http://ex/q")]

    def test_subjects_sorted(self):
        assert self.graph.subjects == [IRI("http://ex/a"), IRI("http://ex/b")]

    def test_triples_with_predicate(self):
        triples = self.graph.triples_with_predicate(IRI("http://ex/p"))
        assert len(triples) == 3
        assert all(t.predicate == IRI("http://ex/p") for t in triples)

    def test_triples_with_unknown_predicate_is_empty(self):
        assert self.graph.triples_with_predicate(IRI("http://ex/zzz")) == []

    def test_triples_with_subject(self):
        triples = self.graph.triples_with_subject(IRI("http://ex/a"))
        assert len(triples) == 3

    def test_objects_for_pair(self):
        objects = self.graph.objects(IRI("http://ex/a"), IRI("http://ex/p"))
        assert objects == [IRI("http://ex/b"), IRI("http://ex/c")]

    def test_predicate_counts(self):
        assert self.graph.predicate_counts() == {
            IRI("http://ex/p"): 3,
            IRI("http://ex/q"): 1,
        }


class TestSerialization:
    def test_to_ntriples_is_sorted_and_parseable(self):
        graph = Graph(
            [
                _triple("http://ex/b", "http://ex/p", "http://ex/c"),
                _triple("http://ex/a", "http://ex/p", "http://ex/b"),
            ]
        )
        text = graph.to_ntriples()
        assert text.index("http://ex/a") < text.index("http://ex/b>")
        assert len(Graph.from_ntriples(text)) == 2

    def test_round_trip_with_literals(self):
        graph = Graph(
            [Triple(IRI("http://ex/a"), IRI("http://ex/p"), Literal("x\ny", language="en"))]
        )
        again = Graph.from_ntriples(graph.to_ntriples())
        assert set(again) == set(graph)
