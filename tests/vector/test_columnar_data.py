"""ColumnarData and the PartitionedData size-memo invalidation contract."""

import pytest

from repro.columnar import ColumnSchema, TableSchema
from repro.engine.data import PartitionedData, estimate_row_bytes
from repro.engine.vectorized import ColumnarData
from repro.errors import PlanError

KV = TableSchema([ColumnSchema("k", "string"), ColumnSchema("v", "string")])


def make_partitioned():
    return PartitionedData(KV, [[("a", "1"), ("b", "2")], [("c", "3")]])


class TestSizeMemoInvalidation:
    def test_memo_survives_repeat_reads(self):
        data = make_partitioned()
        assert data.num_rows == 3
        assert data.estimated_bytes() == sum(
            estimate_row_bytes(row) for row in data.all_rows()
        )
        assert data.num_rows == 3  # second read served from the memo

    def test_invalidate_resets_both_memos(self):
        data = make_partitioned()
        stale_rows = data.num_rows
        stale_bytes = data.estimated_bytes()
        data.partitions[1].append(("d", "4444444444"))
        # Without invalidation the memos keep pricing the old payload…
        assert data.num_rows == stale_rows
        assert data.estimated_bytes() == stale_bytes
        # …and invalidation makes both reflect the replacement.
        data.invalidate_size_cache()
        assert data.num_rows == stale_rows + 1
        assert data.estimated_bytes() == stale_bytes + estimate_row_bytes(
            ("d", "4444444444")
        )


class TestColumnarDataFromPartitioned:
    def test_round_trip_preserves_rows_and_sizes(self):
        data = make_partitioned()
        rows = data.num_rows
        size = data.estimated_bytes()
        columnar = ColumnarData.from_partitioned(data)
        assert columnar.num_partitions == data.num_partitions
        assert columnar.all_rows() == data.all_rows()
        assert columnar.num_rows == rows
        assert columnar.estimated_bytes() == size

    def test_fresh_source_sizes_computed_columnar_side(self):
        data = make_partitioned()
        columnar = ColumnarData.from_partitioned(data)
        assert columnar.num_rows == 3
        assert columnar.estimated_bytes() == sum(
            estimate_row_bytes(row) for row in data.all_rows()
        )

    def test_stale_memo_raises_plan_error(self):
        data = make_partitioned()
        assert data.num_rows == 3  # memoize
        data.partitions[0].append(("z", "9"))  # mutate without invalidating
        with pytest.raises(PlanError, match="stale PartitionedData size memo"):
            ColumnarData.from_partitioned(data)

    def test_invalidated_source_transposes_cleanly(self):
        data = make_partitioned()
        assert data.num_rows == 3
        data.partitions[0].append(("z", "9"))
        data.invalidate_size_cache()
        columnar = ColumnarData.from_partitioned(data)
        assert columnar.num_rows == 4

    def test_empty_dataset_gets_one_empty_batch(self):
        columnar = ColumnarData(KV, [])
        assert columnar.num_partitions == 1
        assert columnar.num_rows == 0
        assert columnar.all_rows() == []
        assert columnar.estimated_bytes() == 0

    def test_partitioner_count_mismatch_rejected(self):
        from repro.engine.data import HashPartitioner
        from repro.vector import ColumnBatch

        batches = [ColumnBatch.from_rows(2, [("a", "1")])]
        with pytest.raises(PlanError, match="partition count"):
            ColumnarData(KV, batches, HashPartitioner(("k",), 3))
