"""Vectorized-execution tests: batches, selection vectors, mode parity."""
