"""REPRO_VECTORIZE differential: vectorized vs row execution, bit for bit.

Two legs mirror the repo's tier-1 fuzz and chaos suites:

- **fuzz** — the same 200 fixed-seed cases as ``tests/fuzz`` (20 seeds ×
  10 queries) run on PRoST mixed under ``REPRO_VECTORIZE=1`` and ``=0``;
  the two solution multisets must be byte-identical (serialized rows,
  sorted).
- **chaos** — the same 50 fault-plan cases as ``tests/chaos`` (25 case
  seeds × 2 chaos seeds, 2 queries each); seeded fault plans must fire
  identically on both paths because the injector reads only counters the
  two paths charge identically.

Beyond rows, each case also asserts the cost-model counters the fault
injector and planner consume (bytes scanned, shuffle/broadcast bytes) are
equal across modes — the strict-equivalence contract of
``engine/vectorized.py``.
"""

from __future__ import annotations

import pytest

from repro.testing import DifferentialRunner, chaos_plan_seed, serialize_query
from repro.testing.differential import make_system, row_key
from repro.vector import vectorized

FUZZ_SEEDS = tuple(range(20))
FUZZ_QUERIES_PER_GRAPH = 10
CHAOS_SEEDS = (1729, 9042)
CHAOS_CASE_SEEDS = tuple(range(25))
CHAOS_QUERIES_PER_GRAPH = 2

#: Cost counters both paths must charge identically (the fault injector
#: snapshots a subset of these; planner thresholds read the byte totals).
PARITY_COUNTERS = (
    "bytes_scanned",
    "rows_processed",
    "narrow_rows_processed",
    "shuffle_bytes",
    "broadcast_bytes",
)


def _counter_totals(system) -> dict[str, int]:
    metrics = system.session.cluster.session_metrics
    return {name: getattr(metrics, name) for name in PARITY_COUNTERS}


def _run_mode(enabled: bool, graph, queries, cluster_config=None):
    """Row multisets + counter totals for one execution mode."""
    with vectorized(enabled):
        system = make_system("prost-mixed", cluster_config=cluster_config)
        system.load(graph)
        results = [
            sorted(row_key(row) for row in system.sparql(query).rows)
            for query in queries
        ]
        return results, _counter_totals(system)


def _assert_modes_agree(seed, graph, queries, cluster_config=None):
    vec_rows, vec_counters = _run_mode(True, graph, queries, cluster_config)
    row_rows, row_counters = _run_mode(False, graph, queries, cluster_config)
    for index, (vec, row) in enumerate(zip(vec_rows, row_rows)):
        assert vec == row, (
            f"seed {seed} query {index} diverges between REPRO_VECTORIZE "
            f"modes:\n  {serialize_query(queries[index])}\n"
            f"  vectorized: {len(vec)} rows\n  row path:   {len(row)} rows"
        )
    assert vec_counters == row_counters, (
        f"seed {seed}: cost counters diverge between modes:\n"
        f"  vectorized: {vec_counters}\n  row path:   {row_counters}"
    )


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_corpus_mode_parity(seed):
    runner = DifferentialRunner(queries_per_graph=FUZZ_QUERIES_PER_GRAPH)
    graph, queries = runner.generate_case(seed)
    _assert_modes_agree(seed, graph, queries)


@pytest.mark.chaos
@pytest.mark.parametrize("chaos_seed", CHAOS_SEEDS)
@pytest.mark.parametrize("seed", CHAOS_CASE_SEEDS)
def test_chaos_mode_parity(seed, chaos_seed):
    from repro.engine.cluster import ClusterConfig

    runner = DifferentialRunner(queries_per_graph=CHAOS_QUERIES_PER_GRAPH)
    graph, queries = runner.generate_case(seed)
    config = ClusterConfig(fault_seed=chaos_plan_seed(chaos_seed, seed))
    _assert_modes_agree(seed, graph, queries, cluster_config=config)
