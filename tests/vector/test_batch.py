"""ColumnBatch unit tests: selection-vector edges, byte accounting, switch."""

from array import array

import pytest

from repro.engine.data import estimate_row_bytes
from repro.rdf.dictionary import TERM_ID_BASE, default_dictionary
from repro.vector import (
    ColumnBatch,
    batch_bytes,
    estimate_batch_bytes,
    pack_ints,
    row_bytes_vector,
    set_vectorize_enabled,
    vectorize_enabled,
    vectorized,
)


@pytest.fixture()
def interned_ids():
    """Three term IDs with known decoded lengths, dropped again afterwards."""
    dictionary = default_dictionary()
    before = len(dictionary.texts)
    ids = [dictionary.intern_text(text) for text in ("<http://ex/a>", '"x"', '"yy"')]
    yield ids
    if len(dictionary.texts) != before:
        dictionary.clear()


class TestSelectionVectorEdges:
    def test_empty_batch(self):
        batch = ColumnBatch.from_rows(2, [])
        assert batch.num_rows == 0
        assert batch.length == 0
        assert batch.rows() == []
        assert batch.compact().rows() == []
        assert batch_bytes(batch) == 0

    def test_empty_selection_over_populated_columns(self):
        batch = ColumnBatch((["a", "b"], [1, 2]), 2, sel=[])
        assert batch.num_rows == 0
        assert batch.rows() == []
        assert batch_bytes(batch) == 0

    def test_all_selected_matches_unselected(self):
        columns = (["a", "b", "c"], [1, None, 3])
        dense = ColumnBatch(columns, 3)
        selected = ColumnBatch(columns, 3, sel=list(range(3)))
        ranged = ColumnBatch(columns, 3, sel=range(3))
        assert selected.rows() == dense.rows() == ranged.rows()
        assert (
            batch_bytes(selected)
            == batch_bytes(dense)
            == batch_bytes(ranged)
        )

    def test_null_runs_survive_selection_and_compaction(self):
        """OPTIONAL's left joins leave runs of ``None`` in right-side
        columns; selection, compaction, and the null mask must all agree."""
        right = ["r0", None, None, None, "r4", None]
        batch = ColumnBatch((list("abcdef"), right), 6, sel=[1, 2, 3, 5])
        assert batch.null_mask(1) == [True, True, True, True]
        assert batch.rows() == [("b", None), ("c", None), ("d", None), ("f", None)]
        compacted = batch.compact()
        assert compacted.sel is None
        assert compacted.rows() == batch.rows()
        assert compacted.null_mask(1) == [True, True, True, True]

    def test_zero_width_batch_counts_rows(self):
        batch = ColumnBatch((), 4, sel=[0, 2])
        assert batch.num_rows == 2
        assert batch.rows() == [(), ()]

    def test_live_is_range_without_selection(self):
        batch = ColumnBatch((["a", "b"],), 2)
        assert list(batch.live()) == [0, 1]
        assert batch.live() == range(2)


class TestPackInts:
    def test_packs_plain_ints(self):
        packed = pack_ints([1, 2, TERM_ID_BASE])
        assert isinstance(packed, array)
        assert list(packed) == [1, 2, TERM_ID_BASE]

    def test_refuses_nulls_strings_and_bools(self):
        assert pack_ints([1, None, 3]) == [1, None, 3]
        assert pack_ints(["a", 1]) == ["a", 1]
        assert pack_ints([True, 1]) == [True, 1]

    def test_refuses_out_of_range(self):
        huge = [1 << 70]
        assert pack_ints(huge) is huge


class TestByteAccounting:
    """batch_bytes == estimate_batch_bytes == summed estimate_row_bytes."""

    def make_batch(self, interned_ids, sel=None):
        a, b, c = interned_ids
        columns = (
            pack_ints([a, b, c, a]),
            [None, "lit", [a, "s"], 7],
        )
        return ColumnBatch(columns, 4, sel=sel)

    @pytest.mark.parametrize("sel", [None, [], [0], [1, 3], list(range(4))])
    def test_three_way_equality(self, interned_ids, sel):
        batch = self.make_batch(interned_ids, sel=sel)
        expected_rows = sum(estimate_row_bytes(row) for row in batch.rows())
        assert estimate_batch_bytes(batch.columns, batch.live()) == expected_rows
        assert batch_bytes(batch) == expected_rows

    def test_row_bytes_vector_prices_each_row(self, interned_ids):
        batch = self.make_batch(interned_ids)
        vector = row_bytes_vector(batch.columns, batch.length)
        assert vector == [estimate_row_bytes(row) for row in batch.rows()]

    def test_cached_vector_prices_selection_views(self, interned_ids):
        base = self.make_batch(interned_ids)
        full = batch_bytes(base)  # populates the shared row_bytes vector
        view = ColumnBatch(base.columns, base.length, sel=[0, 2], bytes_cache=base.bytes_cache)
        assert "row_bytes" in view.bytes_cache
        assert batch_bytes(view) == estimate_batch_bytes(base.columns, [0, 2])
        assert batch_bytes(view) < full

    def test_fresh_narrow_view_does_not_build_table_vector(self, interned_ids):
        batch = self.make_batch(interned_ids, sel=[1])
        assert batch_bytes(batch) == estimate_batch_bytes(batch.columns, [1])
        # Pricing a narrow selection must not memoize a table-length vector.
        assert "row_bytes" not in batch.bytes_cache


class TestVectorizeSwitch:
    def test_context_manager_restores(self):
        before = vectorize_enabled()
        with vectorized(not before):
            assert vectorize_enabled() is (not before)
        assert vectorize_enabled() is before

    def test_set_returns_previous(self):
        before = set_vectorize_enabled(False)
        try:
            assert vectorize_enabled() is False
            assert set_vectorize_enabled(before) is False
        finally:
            set_vectorize_enabled(before)
