"""Sorted-run tests: ordering, range scans, merging, prefix bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import SortedRun, merge_runs, prefix_upper_bound


class TestSortedRun:
    def test_iterates_in_key_order(self):
        run = SortedRun([("b", "2"), ("a", "1"), ("c", "3")])
        assert [k for k, _ in run] == ["a", "b", "c"]

    def test_get(self):
        run = SortedRun([("a", "1"), ("b", "2")])
        assert run.get("a") == "1"
        assert run.get("zz") is None

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            SortedRun([("a", "1"), ("a", "2")])

    def test_scan_bounds_inclusive_exclusive(self):
        run = SortedRun([(k, k) for k in "abcde"])
        assert [k for k, _ in run.scan("b", "d")] == ["b", "c"]

    def test_scan_open_ended(self):
        run = SortedRun([(k, k) for k in "abc"])
        assert [k for k, _ in run.scan()] == ["a", "b", "c"]
        assert [k for k, _ in run.scan(start="b")] == ["b", "c"]
        assert [k for k, _ in run.scan(stop="b")] == ["a"]

    def test_first_last_keys(self):
        run = SortedRun([("m", ""), ("a", ""), ("z", "")])
        assert run.first_key == "a"
        assert run.last_key == "z"
        assert SortedRun([]).first_key is None


class TestMerge:
    def test_later_runs_win(self):
        merged = merge_runs(
            [SortedRun([("a", "old"), ("b", "1")]), SortedRun([("a", "new")])]
        )
        assert merged.get("a") == "new"
        assert merged.get("b") == "1"

    def test_merged_is_sorted(self):
        merged = merge_runs([SortedRun([("c", "")]), SortedRun([("a", "")])])
        assert [k for k, _ in merged] == ["a", "c"]


class TestPrefixUpperBound:
    def test_simple_increment(self):
        assert prefix_upper_bound("abc") == "abd"

    def test_bound_covers_all_prefixed_strings(self):
        bound = prefix_upper_bound("ab")
        assert "ab" < bound
        assert "abzzz" < bound
        assert "ac" >= bound

    def test_max_codepoint_carries(self):
        bound = prefix_upper_bound("a" + chr(0x10FFFF))
        assert bound == "b"

    def test_all_max_returns_none(self):
        assert prefix_upper_bound(chr(0x10FFFF)) is None


@given(st.dictionaries(st.text(max_size=8), st.text(max_size=8), max_size=30),
       st.text(max_size=4), st.text(max_size=4))
@settings(max_examples=60, deadline=None)
def test_property_scan_matches_naive_filter(items, start, stop):
    """A range scan equals sorting + filtering the raw items."""
    run = SortedRun(items.items())
    low = start or None
    high = stop or None
    expected = sorted(
        (k, v)
        for k, v in items.items()
        if (low is None or k >= low) and (high is None or k < high)
    )
    assert list(run.scan(low, high)) == expected
