"""Key-value store tests: tables, scans, flush/compact, tablets, metrics."""

import pytest

from repro.kvstore import SortedKeyValueStore


def make_store(**kwargs) -> SortedKeyValueStore:
    store = SortedKeyValueStore(num_tablet_servers=3, **kwargs)
    store.create_table("t")
    return store


class TestTables:
    def test_create_and_query_tables(self):
        store = make_store()
        assert store.has_table("t")
        assert store.table_names() == ["t"]

    def test_duplicate_table_rejected(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.create_table("t")

    def test_unknown_table_rejected(self):
        with pytest.raises(KeyError):
            make_store().get("nope", "k")

    def test_invalid_server_count_rejected(self):
        with pytest.raises(ValueError):
            SortedKeyValueStore(num_tablet_servers=0)


class TestReadsAndWrites:
    def test_put_get(self):
        store = make_store()
        store.put("t", "k", "v")
        assert store.get("t", "k") == "v"
        assert store.get("t", "missing") is None

    def test_overwrite_wins(self):
        store = make_store()
        store.put("t", "k", "v1")
        store.flush("t")
        store.put("t", "k", "v2")
        assert store.get("t", "k") == "v2"

    def test_scan_merges_memtable_and_runs(self):
        store = make_store()
        store.put("t", "b", "1")
        store.flush("t")
        store.put("t", "a", "2")
        assert list(store.scan("t")) == [("a", "2"), ("b", "1")]

    def test_scan_range(self):
        store = make_store()
        store.batch_put("t", [(k, k) for k in "abcdef"])
        assert [k for k, _ in store.scan("t", "b", "e")] == ["b", "c", "d"]

    def test_prefix_scan(self):
        store = make_store()
        store.batch_put("t", [("ab1", ""), ("ab2", ""), ("ac3", "")])
        assert [k for k, _ in store.prefix_scan("t", "ab")] == ["ab1", "ab2"]

    def test_automatic_flush_at_limit(self):
        store = SortedKeyValueStore(num_tablet_servers=2, memtable_limit=3)
        store.create_table("t")
        store.batch_put("t", [(str(i), "") for i in range(7)])
        assert store.table_size("t") == 7
        assert list(store.scan("t"))  # still scannable after flushes

    def test_compact_single_run(self):
        store = make_store()
        for i in range(5):
            store.put("t", f"k{i}", "")
            store.flush("t")
        store.compact("t")
        assert store.table_size("t") == 5
        assert [k for k, _ in store.scan("t")] == [f"k{i}" for i in range(5)]


class TestTablets:
    def test_tablets_cover_keyspace(self):
        store = make_store()
        store.batch_put("t", [(f"k{i:03d}", "") for i in range(30)])
        store.flush("t")
        tablets = store.tablets("t")
        assert tablets[0].start is None
        assert tablets[-1].stop is None
        for left, right in zip(tablets, tablets[1:]):
            assert left.stop == right.start

    def test_server_for_key(self):
        store = make_store()
        store.batch_put("t", [(f"k{i:03d}", "") for i in range(30)])
        assert 0 <= store.server_for_key("t", "k000") < 3
        assert 0 <= store.server_for_key("t", "zzz") < 3

    def test_empty_table_single_tablet(self):
        tablets = make_store().tablets("t")
        assert len(tablets) == 1


class TestMetrics:
    def test_scan_counts_entries_and_seeks(self):
        store = make_store()
        store.batch_put("t", [(k, "") for k in "abc"])
        store.flush("t")
        store.metrics.reset()
        list(store.scan("t"))
        assert store.metrics.entries_read == 3
        assert store.metrics.seeks >= 1
        assert store.metrics.scans == 1

    def test_get_counts_seek(self):
        store = make_store()
        store.put("t", "k", "v")
        store.metrics.reset()
        store.get("t", "k")
        assert store.metrics.seeks == 1


class TestStorageAccounting:
    def test_sorted_runs_compress_shared_prefixes(self):
        store = make_store()
        items = [(f"http://very/long/shared/prefix/{i:05d}", "") for i in range(200)]
        store.batch_put("t", items)
        raw = sum(len(k) for k, _ in items)
        store.flush("t")
        assert store.stored_bytes("t") < raw / 3

    def test_memtable_counted_uncompressed(self):
        store = make_store()
        store.put("t", "abcdef", "xy")
        assert store.stored_bytes("t") == 8
