"""Unit tests of the cooperative-interleaving harness itself.

The serving-layer race tests (``tests/serve/test_interleave.py``) trust
the scheduler to be deterministic, serialized, and deadlock-detecting;
this file proves those three properties on toy scenarios first.
"""

import threading

import pytest

from repro.testing.interleave import (
    DEFAULT_INTERLEAVE_SEEDS,
    INTERLEAVE_SEEDS_ENV,
    DeadlockError,
    InstrumentedLock,
    InterleaveScheduler,
    SchedulerStallError,
    instrument_methods,
    interleave_seeds,
    replay_instructions,
    sweep,
)


def _increment_scenario(seed: int):
    """Two threads bump a shared counter 5 times each under one lock."""
    scheduler = InterleaveScheduler(seed)
    lock = InstrumentedLock(scheduler, "counter_lock")
    state = {"value": 0}

    def bump():
        for _ in range(5):
            with lock:
                state["value"] += 1

    result = scheduler.run({"alpha": bump, "beta": bump}, timeout_sec=10)
    assert result.ok, result.errors
    return state["value"], tuple(result.trace)


class TestScheduler:
    def test_serialized_execution_is_correct(self):
        for seed in range(5):
            value, _ = _increment_scenario(seed)
            assert value == 10

    def test_same_seed_replays_same_schedule(self):
        for seed in range(5):
            _, first = _increment_scenario(seed)
            _, second = _increment_scenario(seed)
            assert first == second

    def test_different_seeds_explore_different_schedules(self):
        traces = {_increment_scenario(seed)[1] for seed in range(8)}
        assert len(traces) > 1

    def test_one_thread_at_a_time(self):
        """No two registered threads are ever inside the 'running' window
        concurrently — the harness's core guarantee."""
        scheduler = InterleaveScheduler(3)
        active = {"count": 0, "max": 0}
        meta_lock = threading.Lock()

        def body():
            for _ in range(10):
                with meta_lock:
                    active["count"] += 1
                    active["max"] = max(active["max"], active["count"])
                # No yield here: the window between two yield points must
                # belong to exactly one thread.
                with meta_lock:
                    active["count"] -= 1
                scheduler.yield_point("step")

        result = scheduler.run({"a": body, "b": body, "c": body}, timeout_sec=10)
        assert result.ok, result.errors
        assert active["max"] == 1

    def test_unregistered_thread_passes_through(self):
        """Yield points and instrumented locks are no-ops off-harness, so
        instrumented objects stay usable from the test's main thread."""
        scheduler = InterleaveScheduler(0)
        lock = InstrumentedLock(scheduler, "L")
        scheduler.yield_point("main")  # must not park
        with lock:
            pass
        assert not lock.locked()

    def test_step_budget_stalls_runaway_runs(self):
        scheduler = InterleaveScheduler(0, max_steps=20)

        def spin():
            while True:
                scheduler.yield_point("spin")

        result = scheduler.run({"a": spin, "b": spin}, timeout_sec=10)
        assert result.errors
        assert all(
            isinstance(error, SchedulerStallError)
            for error in result.errors.values()
        )

    def test_thread_return_values_are_collected(self):
        scheduler = InterleaveScheduler(1)
        result = scheduler.run({"x": lambda: 41, "y": lambda: 42}, timeout_sec=10)
        assert result.ok
        assert result.results == {"x": 41, "y": 42}


class TestDeadlockDetection:
    @staticmethod
    def _opposite_order_scenario(seed: int):
        scheduler = InterleaveScheduler(seed)
        first = InstrumentedLock(scheduler, "first")
        second = InstrumentedLock(scheduler, "second")

        def forward():
            with first:
                scheduler.yield_point("mid")
                with second:
                    pass

        def backward():
            with second:
                scheduler.yield_point("mid")
                with first:
                    pass

        return scheduler.run(
            {"forward": forward, "backward": backward}, timeout_sec=10
        )

    def test_opposite_lock_order_raises_deadlock_error(self):
        deadlocked = [
            seed
            for seed in range(10)
            if any(
                isinstance(error, DeadlockError)
                for error in self._opposite_order_scenario(seed).errors.values()
            )
        ]
        # Some seeds schedule the two critical sections serially (no
        # deadlock is reachable); enough must interleave them.
        assert deadlocked, "no seed in 0..9 drove the lock-order deadlock"

    def test_deadlock_message_names_the_cycle(self):
        for seed in range(10):
            result = self._opposite_order_scenario(seed)
            for error in result.errors.values():
                if isinstance(error, DeadlockError):
                    message = str(error)
                    assert "deadlock" in message
                    assert "wants" in message
                    return
        pytest.fail("no deadlock observed")

    def test_consistent_lock_order_never_deadlocks(self):
        for seed in range(10):
            scheduler = InterleaveScheduler(seed)
            first = InstrumentedLock(scheduler, "first")
            second = InstrumentedLock(scheduler, "second")

            def nested():
                with first:
                    scheduler.yield_point("mid")
                    with second:
                        pass

            result = scheduler.run({"a": nested, "b": nested}, timeout_sec=10)
            assert result.ok, result.errors


class TestInstrumentation:
    def test_instrument_methods_adds_yield_points(self):
        class Box:
            def __init__(self):
                self.value = 0

            def bump(self):
                self.value += 1
                return self.value

        scheduler = InterleaveScheduler(0)
        box = Box()
        instrument_methods(scheduler, box, ["bump"])
        result = scheduler.run({"only": box.bump}, timeout_sec=10)
        assert result.ok and result.results["only"] == 1
        assert any("enter:Box.bump" in step for step in result.trace)
        assert any("exit:Box.bump" in step for step in result.trace)


class TestSeedPlumbing:
    def test_env_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(INTERLEAVE_SEEDS_ENV, raising=False)
        assert interleave_seeds() == range(DEFAULT_INTERLEAVE_SEEDS)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(INTERLEAVE_SEEDS_ENV, "12")
        assert interleave_seeds() == range(12)

    def test_env_invalid_falls_back(self, monkeypatch):
        for bad in ("", "  ", "many", "0", "-3"):
            monkeypatch.setenv(INTERLEAVE_SEEDS_ENV, bad)
            assert interleave_seeds() == range(DEFAULT_INTERLEAVE_SEEDS)

    def test_replay_instructions_name_seed_and_env(self):
        text = replay_instructions(7, "tests/serve/test_interleave.py")
        assert "seed: 7" in text
        assert f"{INTERLEAVE_SEEDS_ENV}=8" in text
        assert "tests/serve/test_interleave.py" in text

    def test_sweep_attaches_replay_help(self):
        def scenario(seed):
            if seed == 2:
                raise ValueError("boom")

        with pytest.raises(AssertionError) as excinfo:
            sweep(scenario, seeds=range(5), test_id="tests/x.py")
        assert "seed 2" in str(excinfo.value)
        assert "tests/x.py" in str(excinfo.value)
