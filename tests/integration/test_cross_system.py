"""Cross-system integration tests.

The central correctness property of the whole repository: **every system —
PRoST (mixed, VP-only, object-PT, extended stats), SPARQLGX, S2RDF, and Rya —
returns exactly the reference evaluator's solutions** on the same graph, for
the WatDiv basic query set and for randomized graphs/queries.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import Rya, S2Rdf, SparqlGx
from repro.core import ProstEngine
from repro.rdf import Graph, IRI, Triple
from repro.rdf.reference import ReferenceEvaluator
from repro.sparql import parse_sparql
from repro.watdiv import basic_query_set, generate_watdiv


@pytest.fixture(scope="module")
def watdiv():
    dataset = generate_watdiv(scale=60, seed=13)
    return dataset, basic_query_set(dataset), ReferenceEvaluator(dataset.graph)


SYSTEM_FACTORIES = {
    "prost-mixed": lambda: ProstEngine(strategy="mixed"),
    "prost-vp": lambda: ProstEngine(strategy="vp"),
    "prost-objectpt": lambda: ProstEngine(use_object_property_table=True),
    "prost-extended": lambda: ProstEngine(statistics_level="extended"),
    "sparqlgx": SparqlGx,
    "s2rdf": lambda: S2Rdf(selectivity_threshold=0.8),
    "rya": Rya,
}


@pytest.mark.parametrize("system_name", sorted(SYSTEM_FACTORIES))
def test_watdiv_query_set_matches_reference(watdiv, system_name):
    dataset, queries, reference = watdiv
    system = SYSTEM_FACTORIES[system_name]()
    system.load(dataset.graph)
    for query in queries:
        parsed = parse_sparql(query.text)
        got = system.sparql(parsed).rows
        want = reference.evaluate(parsed)
        assert got == want, f"{system_name} differs on {query.name}"


# -- randomized graphs and queries ------------------------------------------------

_SUBJECTS = [IRI(f"http://r/s{i}") for i in range(8)]
_PREDICATES = [IRI(f"http://r/p{i}") for i in range(4)]
_OBJECTS = _SUBJECTS + [IRI(f"http://r/o{i}") for i in range(4)]

_triples = st.builds(
    Triple,
    st.sampled_from(_SUBJECTS),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_OBJECTS),
)

_VARIABLES = ["a", "b", "c", "d"]


@st.composite
def _random_query(draw):
    pattern_count = draw(st.integers(1, 4))
    parts = []
    variables_used = set()
    for _ in range(pattern_count):
        subject = draw(
            st.sampled_from([f"?{v}" for v in _VARIABLES])
            | st.sampled_from([s.n3() for s in _SUBJECTS[:3]])
        )
        predicate = draw(st.sampled_from([p.n3() for p in _PREDICATES]))
        obj = draw(
            st.sampled_from([f"?{v}" for v in _VARIABLES])
            | st.sampled_from([o.n3() for o in _OBJECTS[:4]])
        )
        for slot in (subject, obj):
            if slot.startswith("?"):
                variables_used.add(slot)
        parts.append(f"{subject} {predicate} {obj}")
    if not variables_used:
        variables_used = {"?a"}
        parts.append(f"?a {_PREDICATES[0].n3()} ?b")
    projection = " ".join(sorted(variables_used))
    return f"SELECT {projection} WHERE {{ {' . '.join(parts)} }}"


@given(st.lists(_triples, min_size=1, max_size=40), _random_query())
@settings(max_examples=25, deadline=None)
def test_property_prost_and_rya_match_reference_on_random_input(triples, query):
    """PRoST (both strategies) and Rya agree with the oracle on arbitrary
    graphs and arbitrary (possibly cartesian, possibly empty) BGP queries."""
    graph = Graph(triples)
    parsed = parse_sparql(query)
    want = ReferenceEvaluator(graph).evaluate(parsed)
    for factory in (
        lambda: ProstEngine(strategy="mixed"),
        lambda: ProstEngine(strategy="vp"),
        Rya,
    ):
        system = factory()
        system.load(graph)
        assert system.sparql(parsed).rows == want


@given(st.lists(_triples, min_size=1, max_size=30), _random_query())
@settings(max_examples=10, deadline=None)
def test_property_baseline_engines_match_reference_on_random_input(triples, query):
    """SPARQLGX and S2RDF agree with the oracle on arbitrary input too
    (fewer examples: S2RDF's loading sweep is the expensive part)."""
    graph = Graph(triples)
    parsed = parse_sparql(query)
    want = ReferenceEvaluator(graph).evaluate(parsed)
    for factory in (SparqlGx, lambda: S2Rdf(selectivity_threshold=1.0)):
        system = factory()
        system.load(graph)
        assert system.sparql(parsed).rows == want
