"""Columnar file tests: round trips, pruning, row groups, statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import (
    ColumnSchema,
    TableSchema,
    file_statistics,
    read_schema,
    read_table,
    write_table,
)
from repro.errors import EncodingError, SchemaError
from repro.hdfs import SimulatedHdfs

SCHEMA = TableSchema(
    [
        ColumnSchema("s", "string"),
        ColumnSchema("n", "int"),
        ColumnSchema("tags", "list<string>"),
    ]
)

ROWS = [
    ("a", 1, ["t1", "t2"]),
    ("b", None, None),
    ("c", 3, []),
    ("d", 4, ["t1"]),
]


def make_fs() -> SimulatedHdfs:
    return SimulatedHdfs(num_datanodes=3, block_size=256)


class TestRoundTrip:
    def test_full_read(self):
        fs = make_fs()
        write_table(fs, "/t", SCHEMA, ROWS)
        schema, rows = read_table(fs, "/t")
        assert schema == SCHEMA
        assert rows == ROWS

    def test_empty_table(self):
        fs = make_fs()
        write_table(fs, "/t", SCHEMA, [])
        schema, rows = read_table(fs, "/t")
        assert rows == []
        assert schema == SCHEMA

    def test_row_groups_split(self):
        fs = make_fs()
        stats = write_table(fs, "/t", SCHEMA, ROWS, row_group_size=2)
        assert stats.row_groups == 2
        _, rows = read_table(fs, "/t")
        assert rows == ROWS

    def test_schema_only_read(self):
        fs = make_fs()
        write_table(fs, "/t", SCHEMA, ROWS)
        assert read_schema(fs, "/t") == SCHEMA

    def test_overwrite(self):
        fs = make_fs()
        write_table(fs, "/t", SCHEMA, ROWS)
        write_table(fs, "/t", SCHEMA, ROWS[:1], overwrite=True)
        _, rows = read_table(fs, "/t")
        assert rows == ROWS[:1]


class TestColumnPruning:
    def test_pruned_read_returns_selected_columns(self):
        fs = make_fs()
        write_table(fs, "/t", SCHEMA, ROWS)
        schema, rows = read_table(fs, "/t", columns=["n"])
        assert schema.names == ("n",)
        assert rows == [(1,), (None,), (3,), (4,)]

    def test_pruned_read_preserves_requested_order(self):
        fs = make_fs()
        write_table(fs, "/t", SCHEMA, ROWS)
        schema, rows = read_table(fs, "/t", columns=["tags", "s"])
        assert schema.names == ("tags", "s")
        assert rows[0] == (["t1", "t2"], "a")

    def test_unknown_column_rejected(self):
        fs = make_fs()
        write_table(fs, "/t", SCHEMA, ROWS)
        with pytest.raises(SchemaError):
            read_table(fs, "/t", columns=["zzz"])


class TestValidation:
    def test_wrong_arity_rejected(self):
        fs = make_fs()
        with pytest.raises(SchemaError):
            write_table(fs, "/t", SCHEMA, [("a", 1)])

    def test_wrong_cell_type_rejected(self):
        fs = make_fs()
        with pytest.raises(SchemaError):
            write_table(fs, "/t", SCHEMA, [("a", "not-an-int", None)])

    def test_bad_magic_rejected(self):
        fs = make_fs()
        fs.write("/t", b"NOPE....")
        with pytest.raises(EncodingError):
            read_table(fs, "/t")

    def test_bad_row_group_size_rejected(self):
        with pytest.raises(ValueError):
            write_table(make_fs(), "/t", SCHEMA, ROWS, row_group_size=0)


class TestStatistics:
    def test_null_counts_recorded(self):
        fs = make_fs()
        stats = write_table(fs, "/t", SCHEMA, ROWS)
        n_chunk = [c for c in stats.chunks if c.column == "n"][0]
        assert n_chunk.null_count == 1
        assert n_chunk.num_values == 4

    def test_file_statistics_recomputation_matches(self):
        fs = make_fs()
        written = write_table(fs, "/t", SCHEMA, ROWS, row_group_size=2)
        recomputed = file_statistics(fs, "/t")
        assert recomputed.row_count == written.row_count
        assert recomputed.row_groups == written.row_groups
        assert recomputed.chunks == written.chunks

    def test_bytes_for_column(self):
        fs = make_fs()
        stats = write_table(fs, "/t", SCHEMA, ROWS)
        assert stats.bytes_for_column("s") > 0
        assert stats.bytes_for_column("zzz") == 0

    def test_null_heavy_column_is_tiny(self):
        fs = make_fs()
        schema = TableSchema([ColumnSchema("sparse", "string")])
        rows = [(None,)] * 5000 + [("value",)]
        stats = write_table(fs, "/t", schema, rows)
        assert stats.bytes_for_column("sparse") < 100

    def test_plain_only_encoding_restriction(self):
        fs = make_fs()
        stats = write_table(
            fs, "/t", SCHEMA, ROWS, allowed_encodings=("plain",)
        )
        assert stats.encodings_used() == {"plain"}


_cell = st.none() | st.text(max_size=8)
_rows = st.lists(st.tuples(_cell, st.none() | st.integers(-100, 100)), max_size=30)


@given(_rows, st.integers(min_value=1, max_value=7))
@settings(max_examples=40, deadline=None)
def test_property_round_trip_any_rows_any_grouping(rows, group_size):
    fs = SimulatedHdfs(num_datanodes=2, block_size=128)
    schema = TableSchema([ColumnSchema("a", "string"), ColumnSchema("b", "int")])
    write_table(fs, "/t", schema, rows, row_group_size=group_size)
    _, read_rows = read_table(fs, "/t")
    assert read_rows == rows
