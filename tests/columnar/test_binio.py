"""Binary reader/writer primitive tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import ByteReader, ByteWriter
from repro.errors import EncodingError


class TestWriterReader:
    def test_uvarint_round_trip_boundaries(self):
        writer = ByteWriter()
        values = [0, 1, 127, 128, 16383, 16384, 2**40]
        for value in values:
            writer.write_uvarint(value)
        reader = ByteReader(writer.getvalue())
        assert [reader.read_uvarint() for _ in values] == values

    def test_negative_uvarint_rejected(self):
        with pytest.raises(EncodingError):
            ByteWriter().write_uvarint(-1)

    def test_signed_varint_round_trip(self):
        writer = ByteWriter()
        values = [0, -1, 1, -(2**40), 2**40]
        for value in values:
            writer.write_varint(value)
        reader = ByteReader(writer.getvalue())
        assert [reader.read_varint() for _ in values] == values

    def test_string_round_trip(self):
        writer = ByteWriter()
        writer.write_string("héllo 中文")
        assert ByteReader(writer.getvalue()).read_string() == "héllo 中文"

    def test_double_round_trip(self):
        writer = ByteWriter()
        writer.write_double(-3.5)
        assert ByteReader(writer.getvalue()).read_double() == -3.5

    def test_sized_bytes_round_trip(self):
        writer = ByteWriter()
        writer.write_sized(b"\x00\x01\x02")
        assert ByteReader(writer.getvalue()).read_sized() == b"\x00\x01\x02"

    def test_truncated_read_rejected(self):
        writer = ByteWriter()
        writer.write_string("hello")
        data = writer.getvalue()[:-2]
        with pytest.raises(EncodingError):
            ByteReader(data).read_string()

    def test_truncated_varint_rejected(self):
        with pytest.raises(EncodingError):
            ByteReader(b"\x80").read_uvarint()

    def test_len_tracks_written_bytes(self):
        writer = ByteWriter()
        writer.write_bytes(b"abc")
        assert len(writer) == 3

    def test_reader_position_and_remaining(self):
        reader = ByteReader(b"abcdef")
        reader.read_bytes(2)
        assert reader.position == 2
        assert reader.remaining == 4


@given(st.integers(min_value=0, max_value=2**63))
@settings(max_examples=100, deadline=None)
def test_property_uvarint_round_trips(value):
    writer = ByteWriter()
    writer.write_uvarint(value)
    assert ByteReader(writer.getvalue()).read_uvarint() == value


@given(st.integers(min_value=-(2**62), max_value=2**62))
@settings(max_examples=100, deadline=None)
def test_property_varint_round_trips(value):
    writer = ByteWriter()
    writer.write_varint(value)
    assert ByteReader(writer.getvalue()).read_varint() == value
