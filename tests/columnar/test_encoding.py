"""Encoder tests: PLAIN / RLE / DICTIONARY round trips and selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import ColumnSchema, decode, encode_best
from repro.columnar.encoding import (
    decode_dictionary,
    decode_plain,
    decode_rle,
    encode_dictionary,
    encode_plain,
    encode_rle,
)
from repro.errors import EncodingError

STRING_COL = ColumnSchema("c", "string")
INT_COL = ColumnSchema("c", "int")
DOUBLE_COL = ColumnSchema("c", "double")
BOOL_COL = ColumnSchema("c", "bool")
LIST_COL = ColumnSchema("c", "list<string>")
INT_LIST_COL = ColumnSchema("c", "list<int>")

CODECS = [
    (encode_plain, decode_plain),
    (encode_rle, decode_rle),
    (encode_dictionary, decode_dictionary),
]


@pytest.mark.parametrize("encode,decode_fn", CODECS)
class TestRoundTrips:
    def test_strings_with_nulls(self, encode, decode_fn):
        values = ["a", None, "b", "b", None, None, ""]
        assert decode_fn(STRING_COL, encode(STRING_COL, values)) == values

    def test_integers_signed(self, encode, decode_fn):
        values = [0, -1, 2**40, -(2**40), None, 7, 7]
        assert decode_fn(INT_COL, encode(INT_COL, values)) == values

    def test_doubles(self, encode, decode_fn):
        values = [0.5, -1.25, None, 3.0]
        assert decode_fn(DOUBLE_COL, encode(DOUBLE_COL, values)) == values

    def test_bools(self, encode, decode_fn):
        values = [True, False, None, True, True]
        assert decode_fn(BOOL_COL, encode(BOOL_COL, values)) == values

    def test_string_lists(self, encode, decode_fn):
        values = [["a", "b"], None, [], ["a", "b"], ["c"]]
        assert decode_fn(LIST_COL, encode(LIST_COL, values)) == values

    def test_int_lists(self, encode, decode_fn):
        values = [[1, 2, 3], None, [], [-9]]
        assert decode_fn(INT_LIST_COL, encode(INT_LIST_COL, values)) == values

    def test_empty_column(self, encode, decode_fn):
        assert decode_fn(STRING_COL, encode(STRING_COL, [])) == []

    def test_unicode_strings(self, encode, decode_fn):
        values = ["héllo", "é中文", None]
        assert decode_fn(STRING_COL, encode(STRING_COL, values)) == values


class TestCompressionBehaviour:
    def test_rle_collapses_null_runs(self):
        values = [None] * 1000 + ["x"]
        rle = encode_rle(STRING_COL, values)
        plain = encode_plain(STRING_COL, values)
        assert len(rle) < len(plain) / 50

    def test_dictionary_collapses_repeated_strings(self):
        values = ["http://example.org/very/long/iri"] * 500
        dictionary = encode_dictionary(STRING_COL, values)
        plain = encode_plain(STRING_COL, values)
        assert len(dictionary) < len(plain) / 50

    def test_encode_best_picks_smallest(self):
        values = [None] * 100 + ["a"] * 100
        name, data = encode_best(STRING_COL, values)
        for codec in ("plain", "rle", "dictionary"):
            _, other = encode_best(STRING_COL, values, allowed=(codec,))
            assert len(data) <= len(other)
        assert name in ("rle", "dictionary")

    def test_encode_best_respects_allowed(self):
        name, _ = encode_best(STRING_COL, ["a", "a"], allowed=("plain",))
        assert name == "plain"

    def test_encode_best_requires_a_codec(self):
        with pytest.raises(EncodingError):
            encode_best(STRING_COL, [], allowed=())


class TestDecodeDispatch:
    def test_decode_by_name(self):
        data = encode_rle(STRING_COL, ["a", "a"])
        assert decode(STRING_COL, "rle", data) == ["a", "a"]

    def test_unknown_encoding_rejected(self):
        with pytest.raises(EncodingError):
            decode(STRING_COL, "lzma", b"")

    def test_truncated_data_rejected(self):
        data = encode_plain(STRING_COL, ["abc"])
        with pytest.raises(EncodingError):
            decode_plain(STRING_COL, data[:-2])


_cells = st.none() | st.text(max_size=12)
_list_cells = st.none() | st.lists(st.text(max_size=6), max_size=4)


@given(st.lists(_cells, max_size=60))
@settings(max_examples=60, deadline=None)
def test_property_all_codecs_round_trip_strings(values):
    for encode, decode_fn in CODECS:
        assert decode_fn(STRING_COL, encode(STRING_COL, values)) == values


@given(st.lists(_list_cells, max_size=40))
@settings(max_examples=60, deadline=None)
def test_property_all_codecs_round_trip_lists(values):
    for encode, decode_fn in CODECS:
        assert decode_fn(LIST_COL, encode(LIST_COL, values)) == values


@given(st.lists(st.none() | st.integers(-(2**62), 2**62), max_size=50))
@settings(max_examples=60, deadline=None)
def test_property_all_codecs_round_trip_integers(values):
    for encode, decode_fn in CODECS:
        assert decode_fn(INT_COL, encode(INT_COL, values)) == values
