"""Schema model tests: typing, lookup, selection, cell validation."""

import pytest

from repro.columnar import ColumnSchema, TableSchema, validate_value
from repro.errors import SchemaError


class TestColumnSchema:
    def test_valid_types_accepted(self):
        for type_name in ("string", "int", "double", "bool", "list<string>", "list<int>"):
            ColumnSchema("c", type_name)

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSchema("c", "varchar")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSchema("", "string")

    def test_list_introspection(self):
        column = ColumnSchema("c", "list<int>")
        assert column.is_list
        assert column.element_type == "int"
        assert not ColumnSchema("c", "int").is_list


class TestTableSchema:
    def setup_method(self):
        self.schema = TableSchema(
            [ColumnSchema("a", "string"), ColumnSchema("b", "int")]
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema([ColumnSchema("a", "string"), ColumnSchema("a", "int")])

    def test_lookup(self):
        assert self.schema.column("b").type == "int"
        assert self.schema.index_of("b") == 1
        assert self.schema.has_column("a")
        assert not self.schema.has_column("z")

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            self.schema.column("z")
        with pytest.raises(SchemaError):
            self.schema.index_of("z")

    def test_select_reorders(self):
        selected = self.schema.select(["b", "a"])
        assert selected.names == ("b", "a")

    def test_equality_and_hash(self):
        same = TableSchema([ColumnSchema("a", "string"), ColumnSchema("b", "int")])
        assert self.schema == same
        assert hash(self.schema) == hash(same)


class TestValidateValue:
    def test_none_always_valid(self):
        validate_value(ColumnSchema("c", "int"), None)

    def test_scalar_type_checked(self):
        validate_value(ColumnSchema("c", "int"), 5)
        with pytest.raises(SchemaError):
            validate_value(ColumnSchema("c", "int"), "5")

    def test_bool_is_not_int(self):
        with pytest.raises(SchemaError):
            validate_value(ColumnSchema("c", "int"), True)

    def test_double_accepts_int(self):
        validate_value(ColumnSchema("c", "double"), 5)
        validate_value(ColumnSchema("c", "double"), 5.5)

    def test_list_elements_checked(self):
        validate_value(ColumnSchema("c", "list<string>"), ["a"])
        with pytest.raises(SchemaError):
            validate_value(ColumnSchema("c", "list<string>"), [1])

    def test_list_requires_sequence(self):
        with pytest.raises(SchemaError):
            validate_value(ColumnSchema("c", "list<string>"), "abc")
