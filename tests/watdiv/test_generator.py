"""WatDiv generator tests: determinism, populations, schema properties."""

import pytest

from repro.rdf.terms import IRI
from repro.watdiv import MULTIVALUED_PROPERTIES, Populations, generate_watdiv
from repro.watdiv.schema import GR, REV, SORG, WSDBM


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = generate_watdiv(scale=30, seed=1)
        b = generate_watdiv(scale=30, seed=1)
        assert set(a.graph) == set(b.graph)

    def test_different_seed_different_graph(self):
        a = generate_watdiv(scale=30, seed=1)
        b = generate_watdiv(scale=30, seed=2)
        assert set(a.graph) != set(b.graph)

    def test_placeholders_deterministic(self):
        a = generate_watdiv(scale=30, seed=1)
        b = generate_watdiv(scale=30, seed=1)
        assert a.placeholder("topic", 3) == b.placeholder("topic", 3)


class TestPopulations:
    def test_scale_drives_counts(self):
        small = Populations(50)
        large = Populations(500)
        assert large.users == 10 * small.users
        assert large.products > small.products
        assert large.countries == small.countries == 25

    def test_minimum_scale_enforced(self):
        with pytest.raises(ValueError):
            Populations(5)

    def test_registries_match_populations(self):
        dataset = generate_watdiv(scale=40, seed=3)
        populations = Populations(40)
        assert len(dataset.users) == populations.users
        assert len(dataset.products) == populations.products
        assert len(dataset.offers) == populations.offers
        assert len(dataset.countries) == populations.countries


class TestSchemaProperties:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_watdiv(scale=60, seed=5)

    def test_triples_per_subject_near_watdiv(self, dataset):
        ratio = len(dataset.graph) / len(dataset.graph.subjects)
        assert 5 <= ratio <= 15  # WatDiv sits around 8-10

    def test_multivalued_properties_are_multivalued(self, dataset):
        from repro.rdf import collect_statistics

        stats = collect_statistics(dataset.graph)
        for predicate in (WSDBM + "likes", WSDBM + "hasGenre", REV + "hasReview"):
            assert stats.for_predicate(predicate).is_multivalued, predicate
        assert MULTIVALUED_PROPERTIES  # documented set is non-empty

    def test_offers_link_retailers_to_products(self, dataset):
        offers_edges = dataset.graph.triples_with_predicate(IRI(GR + "offers"))
        includes_edges = dataset.graph.triples_with_predicate(IRI(GR + "includes"))
        assert offers_edges and includes_edges
        offered = {t.object for t in offers_edges}
        including = {t.subject for t in includes_edges}
        assert offered == including  # every offer is included exactly once

    def test_every_review_has_reviewer_and_rating(self, dataset):
        reviewers = dataset.graph.triples_with_predicate(IRI(REV + "reviewer"))
        ratings = dataset.graph.triples_with_predicate(IRI(REV + "rating"))
        assert len(reviewers) == len(ratings) == len(dataset.reviews)

    def test_cities_have_countries(self, dataset):
        from repro.watdiv.schema import GN

        edges = dataset.graph.triples_with_predicate(IRI(GN + "parentCountry"))
        assert len(edges) == len(dataset.cities)

    def test_zipf_skew_concentrates_popularity(self, dataset):
        """The most-liked product gets far more likes than the median."""
        likes = dataset.graph.triples_with_predicate(IRI(WSDBM + "likes"))
        counts = {}
        for triple in likes:
            counts[triple.object] = counts.get(triple.object, 0) + 1
        values = sorted(counts.values(), reverse=True)
        assert values[0] >= 4 * values[len(values) // 2]

    def test_placeholder_kinds_all_work(self, dataset):
        for kind in (
            "user", "product", "retailer", "website", "city", "country",
            "topic", "sub_genre", "language", "product_category", "role",
            "age_group",
        ):
            assert dataset.placeholder(kind, 0) is not None

    def test_placeholder_unknown_kind_rejected(self, dataset):
        with pytest.raises(KeyError):
            dataset.placeholder("starship", 0)
