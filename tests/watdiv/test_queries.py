"""WatDiv basic-query-set tests: structure, instantiation, parseability."""

import pytest

from repro.sparql import parse_sparql
from repro.sparql.algebra import Variable
from repro.watdiv import (
    QUERY_GROUPS,
    QUERY_NAMES,
    TEMPLATES,
    basic_query_set,
    generate_watdiv,
    queries_by_group,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_watdiv(scale=40, seed=9)


@pytest.fixture(scope="module")
def queries(dataset):
    return basic_query_set(dataset)


class TestQuerySetStructure:
    def test_twenty_queries(self, queries):
        assert len(queries) == 20
        assert [q.name for q in queries] == list(QUERY_NAMES)

    def test_group_sizes_match_paper(self, queries):
        grouped = queries_by_group(queries)
        assert len(grouped["C"]) == 3
        assert len(grouped["F"]) == 5
        assert len(grouped["L"]) == 5
        assert len(grouped["S"]) == 7
        assert set(grouped) == set(QUERY_GROUPS)

    def test_all_templates_have_placeholder_or_variables(self):
        for template in TEMPLATES:
            assert "SELECT" in template.template


class TestInstantiation:
    def test_no_placeholders_remain(self, queries):
        for query in queries:
            assert "%" not in query.text, query.name

    def test_all_queries_parse(self, queries):
        for query in queries:
            parsed = parse_sparql(query.text)
            assert parsed.patterns, query.name

    def test_shapes_match_groups(self, queries):
        """Star queries share one subject variable; linear queries don't."""
        parsed = {q.name: parse_sparql(q.text) for q in queries}
        # S2..S7 each have a single subject variable across all patterns.
        for name in ("S2", "S3", "S5", "S6"):
            subjects = {p.subject for p in parsed[name].patterns}
            variables = {s for s in subjects if isinstance(s, Variable)}
            assert len(variables) == 1, name
        # L queries are chains: at least two distinct subject variables or a
        # constant subject.
        for name in ("L1", "L2", "L5"):
            subjects = {str(p.subject) for p in parsed[name].patterns}
            assert len(subjects) >= 2, name
        # C queries touch many variables.
        for name in ("C1", "C2"):
            assert len(parsed[name].pattern_variables) >= 7, name

    def test_pattern_counts_in_paper_range(self, queries):
        counts = {q.name: len(parse_sparql(q.text).patterns) for q in queries}
        assert counts["C2"] == 10
        assert counts["S1"] == 9
        assert counts["L4"] == 2
        assert all(2 <= c <= 10 for c in counts.values())

    def test_salt_changes_placeholders(self, dataset):
        template = [t for t in TEMPLATES if t.name == "L4"][0]
        a = template.instantiate(dataset, salt=0)
        b = template.instantiate(dataset, salt=1)
        assert a != b

    def test_instantiation_deterministic(self, dataset):
        template = TEMPLATES[0]
        assert template.instantiate(dataset, 1) == template.instantiate(dataset, 1)


class TestResultsExist:
    def test_most_queries_nonempty_at_moderate_scale(self):
        """At scale 300 the placeholder choices give most queries results
        (matching WatDiv's instantiation from actual data)."""
        from repro.rdf.reference import ReferenceEvaluator

        dataset = generate_watdiv(scale=300, seed=7)
        evaluator = ReferenceEvaluator(dataset.graph)
        nonempty = 0
        for query in basic_query_set(dataset):
            if evaluator.count(parse_sparql(query.text)) > 0:
                nonempty += 1
        assert nonempty >= 12
