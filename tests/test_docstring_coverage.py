"""Docstring-coverage lint for the observability, engine, governance,
serving, vectorized-execution, and static-analysis public API.

A hand-rolled ``ast`` walk (no third-party lint dependencies): every module
under ``src/repro/obs/``, ``src/repro/engine/``, ``src/repro/governor/``,
``src/repro/serve/``, ``src/repro/vector/``, and ``src/repro/analysis/``
(subpackages included) must carry a module docstring, and every *public*
definition — module-level classes and functions, and the public methods of
public classes — must be documented.
Private names (leading underscore), dunders other than ``__init__``-bearing
dataclasses, and nested helpers are exempt.
"""

import ast
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
LINTED_PACKAGES = (
    "src/repro/obs",
    "src/repro/engine",
    "src/repro/governor",
    "src/repro/serve",
    "src/repro/vector",
    "src/repro/analysis",
)


def _linted_files():
    files = []
    for package in LINTED_PACKAGES:
        # rglob: repro.analysis has nested subpackages (lint/, concurrency/)
        # whose public surface is just as load-bearing as the top level.
        files.extend(sorted((REPO_ROOT / package).rglob("*.py")))
    assert files, "lint target packages missing"
    return files


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _documented_methods(classes: dict, class_node: ast.ClassDef) -> set[str]:
    """Method names documented on the class or any same-module ancestor."""
    documented = set()
    stack = [class_node]
    seen = set()
    while stack:
        node = stack.pop()
        if node.name in seen:
            continue
        seen.add(node.name)
        for member in node.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if ast.get_docstring(member) is not None:
                    documented.add(member.name)
        for base in node.bases:
            if isinstance(base, ast.Name) and base.id in classes:
                stack.append(classes[base.id])
    return documented


def _missing_docstrings(tree: ast.Module) -> list[str]:
    """Names of public definitions in one module that lack a docstring.

    An override counts as documented when a same-module base class documents
    a method of the same name — interface docs live on the base, not on
    every ``schema``/``children``/``describe`` override.
    """
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")
    classes = {
        node.name: node for node in tree.body if isinstance(node, ast.ClassDef)
    }
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                missing.append(node.name)
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                missing.append(node.name)
            inherited = _documented_methods(classes, node)
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not _is_public(member.name):
                    continue
                if member.name in inherited:
                    continue
                if ast.get_docstring(member) is None:
                    missing.append(f"{node.name}.{member.name}")
    return missing


@pytest.mark.parametrize(
    "path", _linted_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_public_api_is_documented(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = _missing_docstrings(tree)
    assert not missing, (
        f"{path.relative_to(REPO_ROOT)}: public definitions without "
        f"docstrings: {', '.join(missing)}"
    )


def test_lint_actually_detects_missing_docstrings():
    # Guard the linter itself: an undocumented public surface must trip it.
    tree = ast.parse(
        "class Thing:\n"
        '    """doc"""\n'
        "    def method(self):\n"
        "        pass\n"
    )
    assert _missing_docstrings(tree) == ["<module>", "Thing.method"]
