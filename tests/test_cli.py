"""CLI tests: every subcommand end to end (benchmark at tiny scale)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def watdiv_file(tmp_path):
    path = tmp_path / "data.nt"
    assert main(["generate", "--scale", "30", "--seed", "3", "--out", str(path)]) == 0
    return path


class TestGenerate:
    def test_writes_parseable_ntriples(self, watdiv_file):
        from repro.rdf import Graph

        graph = Graph.from_file(watdiv_file)
        assert len(graph) > 500

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.nt"
        b = tmp_path / "b.nt"
        main(["generate", "--scale", "30", "--seed", "3", "--out", str(a)])
        main(["generate", "--scale", "30", "--seed", "3", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestQuery:
    def test_query_prints_rows(self, watdiv_file, capsys):
        code = main(
            [
                "query",
                "--data", str(watdiv_file),
                "--query",
                "SELECT ?s ?o WHERE { ?s wsdbm:likes ?o } LIMIT 3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("?s\t?o")
        assert "wsdbm/User" in out

    def test_query_from_file(self, watdiv_file, tmp_path, capsys):
        query_file = tmp_path / "q.rq"
        query_file.write_text("SELECT ?s WHERE { ?s wsdbm:likes ?o } LIMIT 1")
        assert main(
            ["query", "--data", str(watdiv_file), "--query-file", str(query_file)]
        ) == 0
        assert "?s" in capsys.readouterr().out

    def test_explain_mode(self, watdiv_file, capsys):
        main(
            [
                "query", "--data", str(watdiv_file), "--explain",
                "--query",
                "SELECT ?s WHERE { ?s wsdbm:likes ?o . ?s wsdbm:follows ?f }",
            ]
        )
        out = capsys.readouterr().out
        assert "Join Tree" in out and "Engine Plan" in out

    def test_vp_strategy_flag(self, watdiv_file, capsys):
        main(
            [
                "query", "--data", str(watdiv_file), "--strategy", "vp", "--explain",
                "--query", "SELECT ?s WHERE { ?s wsdbm:likes ?o . ?s wsdbm:follows ?f }",
            ]
        )
        assert "PT" not in capsys.readouterr().out.split("Engine Plan")[0]

    def test_missing_query_is_an_error(self, watdiv_file):
        assert main(["query", "--data", str(watdiv_file)]) == 2


class TestQueries:
    def test_prints_all_twenty(self, capsys):
        main(["queries", "--scale", "30"])
        out = capsys.readouterr().out
        for name in ("C1", "F5", "L3", "S7"):
            assert f"-- {name} " in out

    def test_name_filter(self, capsys):
        main(["queries", "--scale", "30", "--name", "L4"])
        out = capsys.readouterr().out
        assert "-- L4 " in out
        assert "-- C1 " not in out


class TestBenchmark:
    def test_single_experiment(self, capsys):
        assert main(["benchmark", "--scale", "30", "--experiment", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Table 1" not in out

    def test_table1_experiment(self, capsys):
        assert main(["benchmark", "--scale", "30", "--experiment", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out


    def test_chart_flag_renders_bars(self, capsys):
        assert main(["benchmark", "--scale", "30", "--experiment", "figure3", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "log-scale bars" in out and "█" in out


class TestFuzz:
    def test_clean_seeds_exit_zero(self, capsys):
        assert main(["fuzz", "--seed", "0", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "fuzz: 20 cases over 2 seed(s) [0..1]: OK" in out

    def test_system_filter_and_verbose(self, capsys):
        code = main(
            [
                "fuzz", "--seed", "3", "--iterations", "1", "--verbose",
                "--system", "prost-mixed", "--system", "rya",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "# seed 3: ok" in captured.err
        assert "OK" in captured.out

    def test_zero_iterations_reports_empty_run(self, capsys):
        assert main(["fuzz", "--iterations", "0"]) == 0
        assert "0 cases over 0 seed(s): OK" in capsys.readouterr().out

    def test_unknown_system_rejected(self, capsys):
        assert main(["fuzz", "--iterations", "1", "--system", "virtuoso"]) == 2
        assert "unknown system" in capsys.readouterr().err

    def test_env_variables_override_defaults(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_SEED", "11")
        monkeypatch.setenv("REPRO_FUZZ_ITERATIONS", "1")
        assert main(["fuzz"]) == 0
        assert "1 seed(s) [11..11]" in capsys.readouterr().out

    def test_chaos_flag_injects_and_reports_recovery(self, capsys):
        assert main(["fuzz", "--seed", "0", "--iterations", "2", "--chaos"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "chaos: task_retries=" in out

    def test_chaos_seed_implies_chaos(self, capsys):
        assert (
            main(["fuzz", "--seed", "0", "--iterations", "1", "--chaos-seed", "5"])
            == 0
        )
        assert "chaos:" in capsys.readouterr().out

    def test_chaos_env_variable_enables_chaos(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "7")
        assert main(["fuzz", "--seed", "0", "--iterations", "1"]) == 0
        assert "chaos:" in capsys.readouterr().out

    def test_chaos_runs_are_seed_deterministic(self, capsys):
        assert main(["fuzz", "--seed", "2", "--iterations", "1", "--chaos-seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["fuzz", "--seed", "2", "--iterations", "1", "--chaos-seed", "9"]) == 0
        assert capsys.readouterr().out == first

    def test_no_chaos_means_no_chaos_line(self, capsys):
        assert main(["fuzz", "--seed", "0", "--iterations", "1"]) == 0
        assert "chaos:" not in capsys.readouterr().out


class TestExplain:
    QUERY = "SELECT ?s ?f WHERE { ?s wsdbm:likes ?o . ?s wsdbm:follows ?f }"

    def test_explain_renders_join_tree_and_engine_plan(self, watdiv_file, capsys):
        code = main(
            ["explain", "--data", str(watdiv_file), "--query", self.QUERY]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Join Tree" in out and "Engine Plan" in out
        assert "est=" in out
        assert "act=" not in out  # estimates only without --analyze

    def test_analyze_annotates_actuals(self, watdiv_file, capsys):
        code = main(
            ["explain", "--data", str(watdiv_file), "--analyze",
             "--query", self.QUERY]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "act=" in out
        assert "rows=" in out.split("Engine Plan")[1]

    def test_analyze_trace_out_writes_json(self, watdiv_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(
            ["explain", "--data", str(watdiv_file), "--analyze",
             "--trace-out", str(trace_path), "--query", self.QUERY]
        )
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert payload["spans"][0]["name"] == "query"

    def test_trace_out_requires_analyze(self, watdiv_file, tmp_path, capsys):
        code = main(
            ["explain", "--data", str(watdiv_file),
             "--trace-out", str(tmp_path / "t.json"), "--query", self.QUERY]
        )
        assert code == 2
        assert "requires --analyze" in capsys.readouterr().err

    def test_baseline_systems_have_plan_shapes(self, watdiv_file, capsys):
        expectations = {
            "s2rdf": "Table Choices",
            "sparqlgx": "Engine Plan",
            "rya": "Index Plan",
        }
        for system, marker in expectations.items():
            assert main(
                ["explain", "--data", str(watdiv_file), "--system", system,
                 "--query", self.QUERY]
            ) == 0
            assert marker in capsys.readouterr().out

    def test_missing_query_is_an_error(self, watdiv_file, capsys):
        assert main(["explain", "--data", str(watdiv_file)]) == 2
        assert "provide --query" in capsys.readouterr().err


class TestMetrics:
    def test_plain_listing_groups_by_layer(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        for layer in ("[engine]", "[faults]", "[hdfs]", "[cost]"):
            assert layer in out
        assert "engine.bytes_scanned" in out

    def test_markdown_matches_registry(self, capsys):
        from repro.obs import REGISTRY

        assert main(["metrics", "--markdown"]) == 0
        assert capsys.readouterr().out == REGISTRY.markdown()


class TestConfig:
    def test_plain_listing_covers_knobs_and_env(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "[ClusterConfig]" in out
        assert "num_workers" in out
        assert "REPRO_VECTORIZE" in out

    def test_markdown_matches_generator(self, capsys):
        from repro.obs import configdoc

        assert main(["config", "--markdown"]) == 0
        assert capsys.readouterr().out == configdoc.markdown()


class TestServe:
    def test_scripted_session(self, watdiv_file, tmp_path, capsys):
        script = tmp_path / "session.txt"
        script.write_text(
            "SELECT ?s WHERE { ?s wsdbm:likes ?o } LIMIT 2\n"
            "SELECT ?s WHERE { ?s wsdbm:likes ?o } LIMIT 2\n"
            ".stats\n"
            ".tenants\n"
            ".quit\n"
        )
        code = main(
            ["serve", "--data", str(watdiv_file), "--script", str(script)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "?s" in out
        stats = {
            parts[0]: parts[1]
            for parts in (line.split() for line in out.splitlines())
            if len(parts) >= 2 and parts[0].startswith("serve.")
        }
        assert stats["serve.queries_served"] == "2"
        assert stats["serve.result_cache_hits"] == "1"
        assert "default" in out  # tenant snapshot line

    def test_explain_command_annotates_cached_plan(self, watdiv_file, tmp_path, capsys):
        query = "SELECT ?s WHERE { ?s wsdbm:likes ?o }"
        script = tmp_path / "session.txt"
        script.write_text(f"{query}\n.explain {query}\n.quit\n")
        assert main(
            ["serve", "--data", str(watdiv_file), "--script", str(script)]
        ) == 0
        assert "[cached plan]" in capsys.readouterr().out

    def test_bad_query_reports_error_and_continues(self, watdiv_file, tmp_path, capsys):
        script = tmp_path / "session.txt"
        script.write_text(
            "THIS IS NOT SPARQL\n"
            "SELECT ?s WHERE { ?s wsdbm:likes ?o } LIMIT 1\n"
        )
        assert main(
            ["serve", "--data", str(watdiv_file), "--script", str(script)]
        ) == 0
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "?s" in captured.out  # the session survived the bad query


class TestReplay:
    def test_writes_bench_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_serve.json"
        code = main(
            ["replay", "--scale", "60", "--clients", "2", "--requests", "2",
             "--out", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "serve-replay"
        assert set(payload["phases"]) == {"cold", "warm_plan", "warm_full"}
        assert payload["plan_cache_hit_rate"] == 1.0
        assert "serve replay" in capsys.readouterr().out


class TestQueryTraceOut:
    def test_query_trace_out_writes_span_tree(self, watdiv_file, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        code = main(
            ["query", "--data", str(watdiv_file),
             "--trace-out", str(trace_path),
             "--query", "SELECT ?s WHERE { ?s wsdbm:likes ?o } LIMIT 2"]
        )
        assert code == 0
        payload = json.loads(trace_path.read_text())
        names = [s["name"] for s in payload["spans"]]
        assert "query" in names


class TestFuzzTraceOut:
    def test_clean_run_writes_no_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "divergences.json"
        code = main(
            ["fuzz", "--seed", "0", "--iterations", "1",
             "--system", "prost-mixed", "--trace-out", str(trace_path)]
        )
        assert code == 0
        assert not trace_path.exists()
        assert "no divergences" in capsys.readouterr().err


class TestParser:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestLint:
    def test_shipped_tree_is_clean_text(self, capsys):
        assert main(["lint"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_json_output_on_clean_tree_is_empty_array(self, capsys):
        import json

        assert main(["lint", "--json"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out) == []
        assert out.endswith("\n")

    @pytest.fixture
    def broken_root(self, tmp_path):
        """A minimal package with exactly one (concurrency) violation."""
        package = tmp_path / "repro"
        (package / "serve").mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "errors.py").write_text("class ReproError(Exception):\n    pass\n")
        (package / "serve" / "__init__.py").write_text("")
        (package / "serve" / "bad.py").write_text(
            "import threading\n"
            "\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0  # guarded-by: _lock\n"
            "\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
        )
        return package

    def test_json_output_is_machine_readable(self, broken_root, capsys):
        import json

        assert main(["lint", "--json", "--root", str(broken_root)]) == 1
        payload = json.loads(capsys.readouterr().out)
        (finding,) = payload
        assert finding["path"] == "serve/bad.py"
        assert finding["line"] == 9
        assert finding["rule"] == "concurrency"
        assert finding["code"] == "CC101"
        assert "Counter.bump" in finding["message"]

    def test_text_report_carries_the_code(self, broken_root, capsys):
        assert main(["lint", "--root", str(broken_root)]) == 1
        out = capsys.readouterr().out
        assert "CC101" in out
        assert "lint: 1 violation(s)" in out
