"""Shared fixtures: small graphs, loaded engines, and query helpers."""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--fuzz-iterations",
        type=int,
        default=None,
        metavar="N",
        help="run the extended differential fuzz test for N random seeds "
        "(default: skipped; REPRO_FUZZ_ITERATIONS works too, and "
        "REPRO_FUZZ_SEED picks the base seed)",
    )

from repro.core import ProstEngine
from repro.rdf import Graph
from repro.rdf.reference import ReferenceEvaluator

#: A small social graph exercising every interesting shape: multi-valued
#: predicates, literals with datatypes, stars, and chains.
SOCIAL_NT = """
<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/alice> <http://ex/knows> <http://ex/carol> .
<http://ex/bob>   <http://ex/knows> <http://ex/carol> .
<http://ex/carol> <http://ex/knows> <http://ex/dave> .
<http://ex/alice> <http://ex/name> "Alice" .
<http://ex/bob>   <http://ex/name> "Bob" .
<http://ex/carol> <http://ex/name> "Carol" .
<http://ex/dave>  <http://ex/name> "Dave" .
<http://ex/alice> <http://ex/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/bob>   <http://ex/age> "25"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/carol> <http://ex/age> "35"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/alice> <http://ex/tag> "x" .
<http://ex/alice> <http://ex/tag> "y" .
<http://ex/bob>   <http://ex/tag> "x" .
<http://ex/alice> <http://ex/city> <http://ex/berlin> .
<http://ex/bob>   <http://ex/city> <http://ex/berlin> .
<http://ex/carol> <http://ex/city> <http://ex/paris> .
<http://ex/berlin> <http://ex/country> <http://ex/germany> .
<http://ex/paris>  <http://ex/country> <http://ex/france> .
"""


@pytest.fixture(scope="session")
def social_graph() -> Graph:
    return Graph.from_ntriples(SOCIAL_NT)


@pytest.fixture(scope="session")
def social_reference(social_graph) -> ReferenceEvaluator:
    return ReferenceEvaluator(social_graph)


@pytest.fixture(scope="session")
def prost_mixed(social_graph) -> ProstEngine:
    engine = ProstEngine(strategy="mixed")
    engine.load(social_graph)
    return engine


@pytest.fixture(scope="session")
def prost_vp(social_graph) -> ProstEngine:
    engine = ProstEngine(strategy="vp")
    engine.load(social_graph)
    return engine


#: Queries over the social graph covering star, chain, filters, modifiers.
SOCIAL_QUERIES = [
    'SELECT ?x ?n WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/name> ?n }',
    'SELECT ?x ?n ?a WHERE { ?x <http://ex/name> ?n . ?x <http://ex/age> ?a }',
    'SELECT ?x WHERE { ?x <http://ex/tag> "x" . ?x <http://ex/tag> ?t }',
    'SELECT DISTINCT ?y WHERE { ?x <http://ex/knows> ?y }',
    'SELECT ?x ?p WHERE { ?x ?p <http://ex/carol> }',
    'SELECT ?x WHERE { ?x <http://ex/age> ?a . FILTER(?a > 26) }',
    'SELECT ?n WHERE { <http://ex/alice> <http://ex/name> ?n }',
    'SELECT ?x ?c WHERE { ?x <http://ex/city> ?ci . ?ci <http://ex/country> ?c }',
    'SELECT ?a ?b WHERE { ?a <http://ex/knows> ?b . ?a <http://ex/tag> "x" . '
    '?b <http://ex/name> ?n . FILTER(?n != "Dave") }',
    'SELECT ?x WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/knows> ?z . '
    '?z <http://ex/knows> ?w }',
]
