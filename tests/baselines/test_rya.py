"""Rya baseline tests: index layout, index choice, nested-loop correctness."""

import pytest

from repro.errors import LoaderError
from repro.baselines import Rya
from repro.baselines.rya import RyaCostModel, _best_index
from repro.rdf import Graph
from repro.rdf.reference import ReferenceEvaluator
from repro.sparql import parse_sparql

from ..conftest import SOCIAL_NT, SOCIAL_QUERIES


@pytest.fixture(scope="module")
def graph():
    return Graph.from_ntriples(SOCIAL_NT)


@pytest.fixture(scope="module")
def loaded(graph):
    system = Rya()
    system.load(graph)
    return system


class TestLoading:
    def test_three_index_tables(self, loaded, graph):
        for table in ("spo", "pos", "osp"):
            assert loaded.store.table_size(table) == len(graph)

    def test_load_report_triples(self, loaded, graph):
        assert loaded.load_report.triples_loaded == len(graph)
        assert loaded.load_report.tables_written == 3

    def test_data_replicated_three_times(self, loaded, graph):
        total_entries = sum(loaded.store.table_size(t) for t in ("spo", "pos", "osp"))
        assert total_entries == 3 * len(graph)


class TestIndexChoice:
    def test_subject_bound_uses_spo(self):
        table, prefix = _best_index(["<s>", None, None])
        assert table == "spo"
        assert prefix == ["<s>"]

    def test_predicate_bound_uses_pos(self):
        table, prefix = _best_index([None, "<p>", None])
        assert table == "pos"

    def test_object_bound_uses_osp(self):
        table, prefix = _best_index([None, None, "<o>"])
        assert table == "osp"

    def test_predicate_object_prefers_pos(self):
        table, prefix = _best_index([None, "<p>", "<o>"])
        assert table == "pos"
        assert prefix == ["<p>", "<o>"]

    def test_nothing_bound_scans_spo(self):
        table, prefix = _best_index([None, None, None])
        assert table == "spo"
        assert prefix == []

    def test_fully_bound_uses_full_key(self):
        _, prefix = _best_index(["<s>", "<p>", "<o>"])
        assert len(prefix) == 3


class TestQuerying:
    @pytest.mark.parametrize("query", SOCIAL_QUERIES)
    def test_matches_reference(self, loaded, graph, query):
        parsed = parse_sparql(query)
        want = ReferenceEvaluator(graph).evaluate(parsed)
        assert loaded.sparql(parsed).rows == want

    def test_query_before_load_rejected(self):
        # Pinned: Rya used to raise a bare RuntimeError here; the error
        # hierarchy lint now requires the shared LoaderError.
        with pytest.raises(LoaderError):
            Rya().sparql("SELECT ?s WHERE { ?s <http://ex/p> ?o }")

    def test_selective_query_costs_less_than_scan_heavy(self, loaded):
        selective = loaded.sparql(
            "SELECT ?n WHERE { <http://ex/alice> <http://ex/name> ?n }"
        ).report.simulated_sec
        heavy = loaded.sparql(
            "SELECT ?x WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/knows> ?z . "
            "?z <http://ex/knows> ?w }"
        ).report.simulated_sec
        assert heavy > selective

    def test_cost_scales_with_data_scale(self, graph):
        scaled = Rya(cost_model=RyaCostModel(data_scale=1000.0))
        scaled.load(graph)
        base_result = scaled.sparql("SELECT ?n WHERE { ?x <http://ex/name> ?n }")
        plain = Rya()
        plain.load(graph)
        plain_result = plain.sparql("SELECT ?n WHERE { ?x <http://ex/name> ?n }")
        ratio = base_result.report.simulated_sec / plain_result.report.simulated_sec
        assert ratio == pytest.approx(1000.0)

    def test_join_reordering_starts_with_most_bound(self, loaded):
        query = parse_sparql(
            "SELECT ?n WHERE { ?x <http://ex/knows> ?y . "
            "<http://ex/alice> <http://ex/name> ?n }"
        )
        ordered = loaded._reorder(list(query.patterns))
        from repro.rdf.terms import IRI

        assert ordered[0].predicate == IRI("http://ex/name")
