"""SPARQLGX-SDE (direct evaluation) baseline tests."""

import pytest

from repro.baselines import SparqlGx, SparqlGxDirect
from repro.rdf import Graph
from repro.rdf.reference import ReferenceEvaluator
from repro.sparql import parse_sparql

from ..conftest import SOCIAL_NT, SOCIAL_QUERIES


@pytest.fixture(scope="module")
def graph():
    return Graph.from_ntriples(SOCIAL_NT)


@pytest.fixture(scope="module")
def sde(graph):
    system = SparqlGxDirect()
    system.load(graph)
    return system


class TestLoading:
    def test_loading_is_a_single_file_copy(self, sde):
        report = sde.load_report
        assert report.tables_written == 1
        assert sde.session.hdfs.exists("/sparqlgx-sde/triples.nt")

    def test_loading_is_much_faster_than_preprocessing(self, graph):
        preprocessing = SparqlGx()
        preprocessing_report = preprocessing.load(graph)
        direct = SparqlGxDirect()
        direct_report = direct.load(graph)
        assert direct_report.simulated_sec < preprocessing_report.simulated_sec / 10


class TestQuerying:
    @pytest.mark.parametrize("query", SOCIAL_QUERIES)
    def test_matches_reference(self, sde, graph, query):
        parsed = parse_sparql(query)
        assert sde.sparql(parsed).rows == ReferenceEvaluator(graph).evaluate(parsed)

    def test_queries_scan_the_whole_file(self, sde, graph):
        """Every pattern's scan reads the full triple table (the SDE cost)."""
        result = sde.sparql(
            "SELECT ?n WHERE { <http://ex/alice> <http://ex/name> ?n }"
        )
        metrics = result.report.engine_report.metrics
        assert metrics.rows_scanned == len(graph)

    def test_queries_cost_more_than_preprocessed_sparqlgx(self, graph):
        preprocessing = SparqlGx()
        preprocessing.load(graph)
        direct = SparqlGxDirect()
        direct.load(graph)
        query = parse_sparql(
            "SELECT ?x ?c WHERE { ?x <http://ex/city> ?ci . ?ci <http://ex/country> ?c }"
        )
        assert (
            direct.sparql(query).report.simulated_sec
            >= preprocessing.sparql(query).report.simulated_sec
        )

    def test_optional_rejected(self, sde):
        from repro.errors import UnsupportedSparqlError

        with pytest.raises(UnsupportedSparqlError):
            sde.sparql(
                "SELECT ?x WHERE { ?x <http://ex/name> ?n . "
                "OPTIONAL { ?x <http://ex/age> ?a } }"
            )
