"""S2RDF baseline tests: ExtVP semantics, table choice, correctness."""

import pytest

from repro.baselines import S2Rdf
from repro.baselines.s2rdf import _join_positions
from repro.rdf import Graph
from repro.rdf.reference import ReferenceEvaluator
from repro.sparql import parse_sparql
from repro.sparql.algebra import TriplePattern, Variable
from repro.rdf.terms import IRI

from ..conftest import SOCIAL_NT, SOCIAL_QUERIES


@pytest.fixture(scope="module")
def graph():
    return Graph.from_ntriples(SOCIAL_NT)


@pytest.fixture(scope="module")
def loaded(graph):
    system = S2Rdf(selectivity_threshold=1.0)
    system.load(graph)
    return system


class TestExtVpComputation:
    def test_reductions_recorded_for_joinable_pairs(self, loaded):
        entries = loaded.extvp_entries()
        assert entries, "some reductions must exist"
        # knows ⋈(OS) name: objects of knows that are subjects of name.
        entry = loaded._ext[("http://ex/knows", "http://ex/name", "OS")]
        assert entry.row_count == 4  # all knows-objects have names

    def test_reduction_contents_are_a_semi_join(self, loaded, graph):
        """ExtVP_knows|country^OS keeps only knows-rows whose object is a
        subject of country — nothing in this graph qualifies."""
        entry = loaded._ext[("http://ex/knows", "http://ex/country", "OS")]
        assert entry.is_empty

    def test_selectivity_bounds(self, loaded):
        for entry in loaded.extvp_entries():
            assert 0.0 <= entry.selectivity < 1.0 or entry.table_name is None

    def test_full_reductions_not_persisted(self, loaded):
        for entry in loaded.extvp_entries():
            if entry.selectivity >= 1.0:
                assert entry.table_name is None

    def test_threshold_limits_persistence(self, graph):
        strict = S2Rdf(selectivity_threshold=0.0)
        report = strict.load(graph)
        persisted = [e for e in strict.extvp_entries() if e.table_name]
        assert persisted == []
        loose = S2Rdf(selectivity_threshold=1.0)
        loose_report = loose.load(graph)
        assert loose_report.stored_bytes > report.stored_bytes

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            S2Rdf(selectivity_threshold=1.5)


class TestJoinPositions:
    def test_all_four_positions(self):
        s, o, z = Variable("s"), Variable("o"), Variable("z")
        p = IRI("http://ex/p")
        base = TriplePattern(s, p, o)
        assert _join_positions(base, TriplePattern(s, p, z)) == "SS"
        assert _join_positions(base, TriplePattern(z, p, s)) == "SO"
        assert _join_positions(base, TriplePattern(o, p, z)) == "OS"
        assert _join_positions(base, TriplePattern(z, p, o)) == "OO"

    def test_no_shared_variable(self):
        p = IRI("http://ex/p")
        a = TriplePattern(Variable("a"), p, Variable("b"))
        b = TriplePattern(Variable("c"), p, Variable("d"))
        assert _join_positions(a, b) is None


class TestQuerying:
    @pytest.mark.parametrize("query", SOCIAL_QUERIES)
    def test_matches_reference(self, loaded, graph, query):
        parsed = parse_sparql(query)
        want = ReferenceEvaluator(graph).evaluate(parsed)
        assert loaded.sparql(parsed).rows == want

    def test_empty_reduction_short_circuits(self, loaded):
        # knows.o ⋈ country.s is empty, so the whole query is provably empty
        # without touching the cluster.
        result = loaded.sparql(
            "SELECT ?c WHERE { ?a <http://ex/knows> ?x . ?x <http://ex/country> ?c }"
        )
        assert result.rows == []
        assert result.report.engine_report is None  # never executed

    def test_unknown_predicate_yields_empty(self, loaded):
        assert loaded.sparql("SELECT ?s WHERE { ?s <http://ex/zzz> ?o }").rows == []

    def test_reduced_tables_are_preferred(self, loaded):
        # city|knows^SO has selectivity 2/3 < 1, so the city pattern reads
        # the persisted reduction instead of the full VP table.
        frame = loaded.dataframe(
            parse_sparql(
                "SELECT ?a ?ci WHERE { ?a <http://ex/knows> ?x . ?x <http://ex/city> ?ci }"
            )
        )
        assert "s2_ext_so_city__knows" in frame.explain()

    def test_full_reductions_fall_back_to_vp(self, loaded):
        # Every city-country reduction is full (selectivity 1.0): plain VP.
        frame = loaded.dataframe(
            parse_sparql(
                "SELECT ?x ?c WHERE { ?x <http://ex/city> ?ci . ?ci <http://ex/country> ?c }"
            )
        )
        assert "s2_ext_" not in frame.explain()
        assert "s2_vp_" in frame.explain()
