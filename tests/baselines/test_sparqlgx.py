"""SPARQLGX baseline tests: storage model, compilation, correctness."""

import pytest

from repro.baselines import SparqlGx
from repro.rdf import Graph
from repro.sparql import parse_sparql

from ..conftest import SOCIAL_QUERIES


@pytest.fixture(scope="module")
def loaded(social_graph_module):
    system = SparqlGx()
    system.load(social_graph_module)
    return system


@pytest.fixture(scope="module")
def social_graph_module():
    from ..conftest import SOCIAL_NT

    return Graph.from_ntriples(SOCIAL_NT)


class TestLoading:
    def test_text_files_written_per_predicate(self, loaded):
        files = loaded.session.hdfs.list_files("/sparqlgx/vp")
        assert len(files) == 6  # six predicates in the social graph

    def test_load_report(self, loaded):
        report = loaded.load_report
        assert report.system == "SPARQLGX"
        assert report.stored_bytes > 0
        assert report.tables_written == 6


class TestQuerying:
    @pytest.mark.parametrize("query", SOCIAL_QUERIES)
    def test_matches_reference(self, loaded, social_graph_module, query):
        from repro.rdf.reference import ReferenceEvaluator

        parsed = parse_sparql(query)
        want = ReferenceEvaluator(social_graph_module).evaluate(parsed)
        assert loaded.sparql(parsed).rows == want

    def test_plans_use_shuffle_joins_only(self, loaded):
        result = loaded.sparql(
            "SELECT ?x ?c WHERE { ?x <http://ex/city> ?ci . ?ci <http://ex/country> ?c }"
        )
        metrics = result.report.engine_report.metrics
        assert metrics.broadcast_count == 0
        assert metrics.shuffle_bytes > 0

    def test_unknown_predicate_yields_empty(self, loaded):
        assert loaded.sparql("SELECT ?s WHERE { ?s <http://ex/zzz> ?o }").rows == []

    def test_variable_predicate_unions_all_tables(self, loaded, social_graph_module):
        rows = loaded.sparql("SELECT ?s ?p ?o WHERE { ?s ?p ?o }").rows
        assert len(rows) == len(social_graph_module)

    def test_report_has_no_join_tree(self, loaded):
        result = loaded.sparql("SELECT ?n WHERE { ?x <http://ex/name> ?n }")
        assert result.report.join_tree is None
        assert loaded.last_query_report() is result.report
