"""OPTIONAL / UNION behaviour of the baselines.

Rya (whose real implementation speaks full SPARQL through the Sesame SAIL)
evaluates both; the two compiled-plan baselines reject them explicitly.
"""

import pytest

from repro.baselines import Rya, S2Rdf, SparqlGx
from repro.errors import UnsupportedSparqlError
from repro.rdf import Graph
from repro.rdf.reference import ReferenceEvaluator
from repro.sparql import parse_sparql

from ..conftest import SOCIAL_NT

EXTENDED_QUERIES = [
    'SELECT ?x ?n ?a WHERE { ?x <http://ex/name> ?n . '
    'OPTIONAL { ?x <http://ex/age> ?a } }',
    'SELECT ?x ?co WHERE { ?x <http://ex/name> ?n . '
    'OPTIONAL { ?x <http://ex/city> ?ci . ?ci <http://ex/country> ?co } }',
    'SELECT ?x WHERE { { ?x <http://ex/age> ?a } UNION { ?x <http://ex/city> ?c } }',
    'SELECT ?x ?v WHERE { { ?x <http://ex/knows> ?v } UNION '
    '{ ?x <http://ex/tag> ?v } }',
]


@pytest.fixture(scope="module")
def graph():
    return Graph.from_ntriples(SOCIAL_NT)


class TestRyaExtensions:
    @pytest.mark.parametrize("query", EXTENDED_QUERIES)
    def test_rya_matches_reference(self, graph, query):
        rya = Rya()
        rya.load(graph)
        parsed = parse_sparql(query)
        assert rya.sparql(parsed).rows == ReferenceEvaluator(graph).evaluate(parsed)


class TestCompiledBaselinesReject:
    @pytest.mark.parametrize("query", EXTENDED_QUERIES[:1] + EXTENDED_QUERIES[2:3])
    def test_sparqlgx_rejects(self, graph, query):
        system = SparqlGx()
        system.load(graph)
        with pytest.raises(UnsupportedSparqlError):
            system.sparql(query)

    @pytest.mark.parametrize("query", EXTENDED_QUERIES[:1] + EXTENDED_QUERIES[2:3])
    def test_s2rdf_rejects(self, graph, query):
        system = S2Rdf()
        system.load(graph)
        with pytest.raises(UnsupportedSparqlError):
            system.sparql(query)
